#include "src/serve/daemon.h"

#if !defined(_WIN32)

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "src/api/campaign.h"
#include "src/store/faultfs.h"

namespace fg::serve {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

std::string journal_file(const std::string& dir, u64 id) {
  char name[32];
  std::snprintf(name, sizeof(name), "sub-%08llu.json",
                static_cast<unsigned long long>(id));
  return dir + "/" + name;
}

}  // namespace

ServeDaemon::ServeDaemon(ServeConfig cfg) : cfg_(std::move(cfg)) {}

ServeDaemon::~ServeDaemon() {
  for (Conn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(cfg_.socket_path.c_str());
  }
}

std::string ServeDaemon::journal_dir() const {
  return cfg_.store_dir + "/serve/queue";
}

bool ServeDaemon::bind_socket(std::string* err) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
    *err = "serve: socket path too long (" +
           std::to_string(cfg_.socket_path.size()) + " bytes, max " +
           std::to_string(sizeof(addr.sun_path) - 1) + "): " +
           cfg_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
              cfg_.socket_path.size() + 1);

  struct stat st{};
  if (::lstat(cfg_.socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      *err = "serve: " + cfg_.socket_path +
             " exists and is not a socket; refusing to unlink it";
      return false;
    }
    // A socket file already there is either a live daemon (connect
    // succeeds: refuse to fight over the store) or a stale leftover from a
    // kill -9 (connect refused: unlink and take over — the resume path).
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool alive = ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                                   sizeof(addr)) == 0;
      ::close(probe);
      if (alive) {
        *err = "serve: another daemon is live on " + cfg_.socket_path;
        return false;
      }
    }
    ::unlink(cfg_.socket_path.c_str());
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *err = std::string("serve: socket(): ") + std::strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *err = "serve: bind(" + cfg_.socket_path + "): " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    *err = std::string("serve: listen(): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

bool ServeDaemon::init(std::string* err) {
  if (inited_) return true;
  if (cfg_.store_dir.empty() || cfg_.socket_path.empty()) {
    *err = "serve: store directory and socket path are required";
    return false;
  }
  if (!store_.open(cfg_.store_dir, err)) return false;
  if (!store::make_dirs(journal_dir(), err)) return false;
  workers_ = cfg_.workers > 0
                 ? cfg_.workers
                 : std::max<u32>(1, std::thread::hardware_concurrency());
  slots_.assign(workers_, Worker{});
  if (!bind_socket(err)) return false;
  replay_journal();
  inited_ = true;
  return true;
}

void ServeDaemon::replay_journal() {
  std::vector<std::pair<u64, std::string>> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(journal_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long id = 0;
    if (std::sscanf(name.c_str(), "sub-%llu.json", &id) == 1 && id > 0) {
      files.emplace_back(id, entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& [id, path] : files) {
    next_id_ = std::max(next_id_, id + 1);
    std::string text, ferr;
    if (!store::read_file(path, &text, &ferr)) continue;
    json::Value v;
    if (!json::parse(text, &v) || !v.is_object() || v.get("spec") == nullptr) {
      // A garbled journal entry (torn by ENOSPC?) cannot be resumed; leave
      // it in place as evidence rather than silently deleting it.
      std::fprintf(stderr, "fgsim serve: unreadable submission journal %s\n",
                   path.c_str());
      continue;
    }
    Request req;
    req.kind = RequestKind::kSubmit;
    std::string serr;
    if (!api::spec_from_json(json::dump(*v.get("spec"), 0), &req.spec,
                             &serr)) {
      std::fprintf(stderr, "fgsim serve: journal %s: bad spec: %s\n",
                   path.c_str(), serr.c_str());
      continue;
    }
    req.name = v.get_str("name");
    req.with_baseline = v.get_bool("with_baseline", true);
    Submission* sub = nullptr;
    std::string aerr;
    if (accept_submission(req, /*replayed=*/true, id, &sub, &aerr) == 0) {
      std::fprintf(stderr, "fgsim serve: journal %s: %s\n", path.c_str(),
                   aerr.c_str());
      continue;
    }
    if (sub->complete()) finish_submission(sub->id);
    if (!cfg_.quiet) {
      std::printf(
          "fgsim serve: replayed submission %llu (%zu points, %zu already "
          "published)\n",
          static_cast<unsigned long long>(id), sub->n_points, sub->from_store);
    }
  }
}

u64 ServeDaemon::accept_submission(const Request& req, bool replayed,
                                   u64 forced_id, Submission** out,
                                   std::string* err) {
  std::vector<api::GridPoint> points;
  if (!api::expand_grid(req.spec, &points, err)) return 0;
  const u64 id = forced_id != 0 ? forced_id : next_id_++;

  if (!replayed) {
    // Journal the accepted submission BEFORE acknowledging it: a daemon
    // killed one instruction after the ack still restarts into a queue
    // that contains this work.
    json::Value j = json::Value::object();
    j.set("v", json::Value::of(kProtocolVersion));
    if (!req.name.empty()) j.set("name", json::Value::of_str(req.name));
    j.set("with_baseline", json::Value::of_bool(req.with_baseline));
    j.set("spec", api::spec_to_json_value(req.spec));
    if (!store::write_file_atomic(journal_file(journal_dir(), id),
                                  json::dump(j, 0), err)) {
      return 0;
    }
  }

  std::vector<std::string> keys(points.size());
  std::vector<std::string> resolved(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    keys[i] = api::result_key(points[i].spec, req.with_baseline);
    std::string payload;
    if (store_.get(keys[i], &payload) == store::ResultStore::GetStatus::kHit) {
      resolved[i] = std::move(payload);
    }
  }
  const std::string name = !req.name.empty() ? req.name : req.spec.name;
  Submission& sub =
      queue_.add_submission(id, name, std::move(points), std::move(keys),
                            std::move(resolved), req.with_baseline, replayed);
  *out = &sub;
  return id;
}

void ServeDaemon::launch_ready_workers() {
  const double now = now_ms();
  for (Worker& w : slots_) {
    if (w.pid >= 0) continue;
    PointRun* p = queue_.take_next(now, w.last_sub);
    if (p == nullptr) return;
    const u64 sub_id = p->waiters.empty() ? 0 : p->waiters.front().first;
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: sever the daemon's descriptors, run one attempt, hard-exit
      // (no destructors — the parent's socket and journal state stay
      // untouched). The store — not this exit code — is the source of
      // truth for success.
      ::close(listen_fd_);
      for (Conn& c : conns_) {
        if (c.fd >= 0) ::close(c.fd);
      }
      std::string why;
      const bool ok = api::execute_point_to_store(
          p->point, p->fault_index, p->attempts - 1, p->with_baseline, &store_,
          /*payload=*/nullptr, &why);
      std::_Exit(ok ? 0 : 13);
    }
    if (pid < 0) {
      for (const u64 done : queue_.fail_attempt(p, "fork_failed", false,
                                                cfg_.max_attempts,
                                                cfg_.backoff_ms, now)) {
        finish_submission(done);
      }
      continue;
    }
    w.pid = pid;
    w.key = p->key;
    w.sub = sub_id;
    w.deadline_ms =
        cfg_.point_timeout_s > 0 ? now + cfg_.point_timeout_s * 1000.0 : 0.0;
    w.timed_out = false;
  }
}

void ServeDaemon::reap_workers() {
  const double now = now_ms();
  for (Worker& w : slots_) {
    if (w.pid < 0) continue;
    if (w.deadline_ms > 0 && !w.timed_out && now > w.deadline_ms) {
      ::kill(w.pid, SIGKILL);  // reaped on a later pass
      w.timed_out = true;
    }
    int st = 0;
    const pid_t got = ::waitpid(w.pid, &st, WNOHANG);
    if (got == 0) continue;
    PointRun* p = queue_.find_point(w.key);
    const u64 finished_sub = w.sub;
    const bool timed_out = w.timed_out;
    w.pid = -1;
    w.key.clear();
    w.last_sub = finished_sub;
    if (p == nullptr || p->state != PointState::kRunning) continue;

    std::string payload;
    std::vector<u64> done_subs;
    if (store_.get(p->key, &payload) == store::ResultStore::GetStatus::kHit) {
      const std::string point_name = p->point.name;
      done_subs = queue_.complete_point(p, payload);  // frees *p
      if (!cfg_.quiet) {
        std::printf("fgsim serve: executed %s (sub %llu)\n",
                    point_name.c_str(),
                    static_cast<unsigned long long>(finished_sub));
      }
    } else {
      const bool clean_exit =
          got > 0 && WIFEXITED(st) && WEXITSTATUS(st) == 0;
      const char* why = "exit_nonzero";
      if (timed_out) {
        why = "timeout";
      } else if (got > 0 && WIFEXITED(st) &&
                 WEXITSTATUS(st) == store::kFaultCrashExit) {
        why = "injected_crash";
      } else if (got > 0 && WIFSIGNALED(st)) {
        why = "killed";
      } else if (clean_exit) {
        why = "publish_lost";  // exit 0 but no entry: treat as a failure
      }
      done_subs = queue_.fail_attempt(p, why, timed_out, cfg_.max_attempts,
                                      cfg_.backoff_ms, now);
    }
    for (const u64 id : done_subs) finish_submission(id);
  }
}

void ServeDaemon::finish_submission(u64 id) {
  Submission* sub = queue_.find(id);
  if (sub == nullptr || sub->finalized) return;
  sub->finalized = true;
  if (!sub->cancelled) ++queue_.stats().submissions_completed;
  store::remove_file(journal_file(journal_dir(), id));
  answer_waiters(id);
  if (!cfg_.quiet) {
    std::printf(
        "fgsim serve: submission %llu %s: %zu points, %zu from store, %zu "
        "deduped, %zu failed\n",
        static_cast<unsigned long long>(id),
        sub->cancelled ? "cancelled" : "complete", sub->n_points,
        sub->from_store, sub->deduped, sub->failed);
    std::fflush(stdout);
  }
}

json::Value ServeDaemon::submission_json(const Submission& sub,
                                         bool with_results) const {
  json::Value v = json::Value::object();
  v.set("id", json::Value::of(sub.id));
  v.set("name", json::Value::of_str(sub.name));
  v.set("points", json::Value::of(sub.n_points));
  v.set("done", json::Value::of(sub.done));
  v.set("failed", json::Value::of(sub.failed));
  v.set("from_store", json::Value::of(sub.from_store));
  v.set("deduped", json::Value::of(sub.deduped));
  v.set("complete", json::Value::of_bool(sub.complete()));
  v.set("cancelled", json::Value::of_bool(sub.cancelled));
  v.set("replayed", json::Value::of_bool(sub.replayed));
  if (with_results) {
    json::Value arr = json::Value::array();
    for (const std::string& payload : sub.payloads) {
      json::Value o;
      if (payload.empty() || !json::parse(payload, &o)) {
        o = json::Value();  // failed/unresolved points export null
      }
      arr.push(std::move(o));
    }
    v.set("results", std::move(arr));
  }
  return v;
}

json::Value ServeDaemon::stats_json() const {
  const ServeStats& s = queue_.stats();
  json::Value st = json::Value::object();
  st.set("submissions_accepted", json::Value::of(s.submissions_accepted));
  st.set("submissions_completed", json::Value::of(s.submissions_completed));
  st.set("submissions_cancelled", json::Value::of(s.submissions_cancelled));
  st.set("submissions_replayed", json::Value::of(s.submissions_replayed));
  st.set("points_submitted", json::Value::of(s.points_submitted));
  st.set("store_hits", json::Value::of(s.store_hits));
  st.set("dedupe_hits", json::Value::of(s.dedupe_hits));
  st.set("executed", json::Value::of(s.executed));
  st.set("retries", json::Value::of(s.retries));
  st.set("timeouts", json::Value::of(s.timeouts));
  st.set("failed_points", json::Value::of(s.failed_points));
  st.set("cancelled_points", json::Value::of(s.cancelled_points));
  st.set("steals", json::Value::of(s.steals));
  st.set("queue_depth", json::Value::of(queue_.queue_depth()));
  st.set("running", json::Value::of(queue_.running()));

  json::Value workers = json::Value::array();
  for (const Worker& w : slots_) {
    json::Value wv = json::Value::object();
    wv.set("state", json::Value::of_str(w.pid >= 0 ? "running" : "idle"));
    if (w.pid >= 0) {
      wv.set("sub", json::Value::of(w.sub));
      wv.set("key", json::Value::of_str(w.key.substr(0, 48)));
    }
    workers.push(std::move(wv));
  }

  const store::StoreStats ss = store_.stats();
  json::Value sv = json::Value::object();
  sv.set("hits", json::Value::of(ss.hits));
  sv.set("misses", json::Value::of(ss.misses));
  sv.set("publishes", json::Value::of(ss.publishes));
  sv.set("quarantined", json::Value::of(ss.quarantined));

  json::Value v = json::Value::object();
  v.set("stats", std::move(st));
  v.set("workers", std::move(workers));
  v.set("store", std::move(sv));
  v.set("draining", json::Value::of_bool(draining_));
  return v;
}

void ServeDaemon::answer_waiters(u64 sub_id) {
  Submission* sub = queue_.find(sub_id);
  if (sub == nullptr) return;
  for (Conn& c : conns_) {
    if (c.fd < 0 || c.wait_sub != sub_id) continue;
    c.wait_sub = 0;
    send(c, ok_response(submission_json(*sub, c.want_results)));
  }
}

void ServeDaemon::check_drain_waiters() {
  if (!draining_ || !queue_.idle()) return;
  for (Conn& c : conns_) {
    if (c.fd < 0 || !c.drain_wait) continue;
    c.drain_wait = false;
    json::Value v = json::Value::object();
    v.set("drained", json::Value::of_bool(true));
    v.set("failed_points", json::Value::of(queue_.stats().failed_points));
    send(c, ok_response(std::move(v)));
  }
}

void ServeDaemon::handle_line(Conn& c, const std::string& line) {
  if (line.empty()) return;  // blank keep-alive lines are tolerated
  Request req;
  std::string err;
  if (!parse_request(line, &req, &err)) {
    send(c, error_response(err));
    return;
  }
  handle_request(c, req);
}

void ServeDaemon::handle_request(Conn& c, const Request& req) {
  switch (req.kind) {
    case RequestKind::kSubmit: {
      if (draining_) {
        send(c, error_response("daemon is draining; not accepting work"));
        return;
      }
      Submission* sub = nullptr;
      std::string err;
      const u64 id = accept_submission(req, /*replayed=*/false, 0, &sub, &err);
      if (id == 0) {
        send(c, error_response("submit: " + err));
        return;
      }
      if (sub->complete()) {
        finish_submission(id);
        send(c, ok_response(submission_json(*sub, req.want_results)));
        return;
      }
      if (req.wait) {
        c.wait_sub = id;  // answered by finish_submission
        c.want_results = req.want_results;
        return;
      }
      json::Value ack = submission_json(*sub, false);
      ack.set("accepted", json::Value::of_bool(true));
      send(c, ok_response(std::move(ack)));
      return;
    }
    case RequestKind::kStatus: {
      if (req.has_id) {
        Submission* sub = queue_.find(req.id);
        if (sub == nullptr) {
          send(c, error_response("status: unknown submission id " +
                                 std::to_string(req.id)));
          return;
        }
        send(c, ok_response(submission_json(*sub, false)));
        return;
      }
      json::Value jobs = json::Value::array();
      for (const auto& [id, sub] : queue_.submissions()) {
        jobs.push(submission_json(sub, false));
      }
      json::Value v = json::Value::object();
      v.set("jobs", std::move(jobs));
      v.set("draining", json::Value::of_bool(draining_));
      send(c, ok_response(std::move(v)));
      return;
    }
    case RequestKind::kCancel: {
      const size_t dropped = queue_.cancel(req.id);
      if (dropped == static_cast<size_t>(-1)) {
        send(c, error_response("cancel: unknown submission id " +
                               std::to_string(req.id)));
        return;
      }
      Submission* sub = queue_.find(req.id);
      if (sub != nullptr && !sub->finalized) {
        sub->finalized = true;
        store::remove_file(journal_file(journal_dir(), req.id));
        answer_waiters(req.id);  // a parked waiter learns of the cancel
      }
      json::Value v = json::Value::object();
      v.set("id", json::Value::of(req.id));
      v.set("cancelled_pending", json::Value::of(dropped));
      send(c, ok_response(std::move(v)));
      return;
    }
    case RequestKind::kStats:
      send(c, ok_response(stats_json()));
      return;
    case RequestKind::kDrain: {
      draining_ = true;
      if (queue_.idle()) {
        json::Value v = json::Value::object();
        v.set("drained", json::Value::of_bool(true));
        v.set("failed_points", json::Value::of(queue_.stats().failed_points));
        send(c, ok_response(std::move(v)));
      } else {
        c.drain_wait = true;  // answered once the backlog is empty
      }
      return;
    }
    case RequestKind::kShutdown: {
      json::Value v = json::Value::object();
      v.set("shutting_down", json::Value::of_bool(true));
      send(c, ok_response(std::move(v)));
      stop_.store(true);
      return;
    }
  }
}

void ServeDaemon::send(Conn& c, const std::string& text) {
  if (c.fd < 0) return;
  std::string frame = text;
  frame.push_back('\n');
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(c.fd, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Dead or pathologically slow client (SO_SNDTIMEO): it loses only its
    // own response.
    ::close(c.fd);
    c.fd = -1;
    return;
  }
}

ServeDaemon::Conn* ServeDaemon::find_conn(int fd) {
  if (fd < 0) return nullptr;
  for (Conn& c : conns_) {
    if (c.fd == fd) return &c;
  }
  return nullptr;
}

void ServeDaemon::sweep_closed_conns() {
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return c.fd < 0; }),
               conns_.end());
}

bool ServeDaemon::run(std::string* err) {
  if (!inited_ && !init(err)) return false;
  if (!cfg_.quiet) {
    std::printf("fgsim serve: listening on %s, store %s, %u workers\n",
                cfg_.socket_path.c_str(), cfg_.store_dir.c_str(), workers_);
    std::fflush(stdout);
  }
  while (!stop_.load()) {
    launch_ready_workers();
    reap_workers();
    check_drain_waiters();

    // Poll timeout: tight while children run (their exit does not wake
    // poll), the backoff gate when retries are pending, lazy when idle.
    int timeout = 200;
    if (queue_.running() > 0) {
      timeout = 10;
    } else if (const double ready = queue_.next_ready_ms(); ready > 0) {
      timeout = std::clamp(static_cast<int>(ready - now_ms()) + 1, 1, 50);
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns_) fds.push_back({c.fd, POLLIN, 0});
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      *err = std::string("serve: poll(): ") + std::strerror(errno);
      return false;
    }

    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        // Bound the damage a never-reading client can do to one send.
        timeval tv{30, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        Conn c;
        c.fd = fd;
        conns_.push_back(std::move(c));
      }
    }

    // Walk the poll snapshot by FD VALUE, not index: handling a request can
    // close other connections (answer_waiters to a dead client), and a
    // positional walk over a mutated conns_ would read sockets poll never
    // flagged — a blocking recv on an idle peer. Closed conns are only
    // marked (fd = -1) here and swept below, so fd numbers cannot be
    // reused mid-walk.
    for (size_t k = 1; k < fds.size(); ++k) {
      if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Conn* c = find_conn(fds[k].fd);
      if (c == nullptr) continue;  // already closed this iteration
      char buf[4096];
      const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n <= 0 && !(n < 0 && (errno == EAGAIN || errno == EINTR))) {
        ::close(c->fd);  // EOF: a torn trailing line is discarded
        c->fd = -1;
        continue;
      }
      if (n > 0) c->in.append(buf, static_cast<size_t>(n));
      std::string line;
      while (c->fd >= 0 && c->in.take_line(&line)) handle_line(*c, line);
      if (c->fd >= 0 && c->in.over_limit()) {
        send(*c, error_response(
                     "oversized frame (> " + std::to_string(kMaxFrameBytes) +
                     " bytes without a newline); closing connection"));
        if (c->fd >= 0) ::close(c->fd);
        c->fd = -1;
      }
    }
    sweep_closed_conns();
  }

  // Clean stop: SIGKILL in-flight children (their submissions stay
  // journaled; unpublished points re-execute on the next start) and reap.
  for (Worker& w : slots_) {
    if (w.pid < 0) continue;
    ::kill(w.pid, SIGKILL);
    int st = 0;
    ::waitpid(w.pid, &st, 0);
    w.pid = -1;
  }
  for (Conn& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(cfg_.socket_path.c_str());
  if (!cfg_.quiet) {
    const ServeStats& s = queue_.stats();
    std::printf(
        "fgsim serve: stopped — %llu submissions, %llu store hits, %llu "
        "dedupe hits, %llu executed, %llu failed\n",
        static_cast<unsigned long long>(s.submissions_accepted),
        static_cast<unsigned long long>(s.store_hits),
        static_cast<unsigned long long>(s.dedupe_hits),
        static_cast<unsigned long long>(s.executed),
        static_cast<unsigned long long>(s.failed_points));
  }
  return true;
}

}  // namespace fg::serve

#endif  // !_WIN32
