// The daemon's submission registry and global point queue.
//
// Two layers of dedupe make "no simulation ever runs twice" hold fleet-wide:
//  * Store dedupe: a point whose canonical result_key is already published
//    in the ResultStore is answered from disk at accept time (the daemon
//    consults the store; this class only records the hit).
//  * In-flight dedupe: a point that is pending, running, or in retry
//    backoff when a second submission names the same key is NOT enqueued
//    again — the new submission attaches as a waiter and both submissions
//    are answered by the one execution.
//
// Scheduling is a work-stealing round-robin over per-submission backlogs:
// every idle worker slot takes the next ready point from the next
// submission with pending work, regardless of which submission it belongs
// to, so one giant submission cannot starve a small one and an almost-done
// submission's stragglers are drained by every worker, not just "its own".
// A worker that crosses from one submission to another counts as a steal in
// the stats (the fleet-debuggability counter, not a correctness knob).
//
// Threading: this class is owned and mutated ONLY by the daemon's event
// loop thread (workers are forked processes, not threads), so it is
// deliberately lock-free in the single-threaded sense — no mutexes to get
// wrong. The (trivially copyable) ServeStats snapshot is the only thing
// handed across the API boundary.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/api/spec.h"

namespace fg::serve {

struct ServeStats {
  u64 submissions_accepted = 0;
  u64 submissions_completed = 0;
  u64 submissions_cancelled = 0;
  u64 submissions_replayed = 0;  // journal-recovered on daemon start
  u64 points_submitted = 0;      // across submissions, duplicates included
  u64 store_hits = 0;            // answered straight from the ResultStore
  u64 dedupe_hits = 0;           // attached to an in-flight execution
  u64 executed = 0;              // fresh executions that published an entry
  u64 retries = 0;
  u64 timeouts = 0;  // watchdog kills (a subset of retries/failures)
  u64 failed_points = 0;
  /// Pending points dropped by cancel before any execution. Closes the
  /// books: points_submitted == store_hits + dedupe_hits + executed +
  /// failed_points + cancelled_points + in-flight (queue depth + running).
  u64 cancelled_points = 0;
  u64 steals = 0;  // worker slots that crossed submissions
};

enum class PointState : u8 { kPending, kRunning, kBackoff, kDone, kFailed };

/// One unique in-flight point: the unit of execution and of dedupe.
struct PointRun {
  std::string key;       // canonical result_key — the identity
  api::GridPoint point;  // the first submitter's concrete spec
  bool with_baseline = true;
  PointState state = PointState::kPending;
  u32 attempts = 0;      // begun executions
  double ready_ms = 0;   // backoff gate (steady-clock ms); 0 = now
  u64 fault_index = 0;   // FG_FAULT @point index: the first submitter's
  std::string why;       // failure slug after attempts exhaust
  /// (submission id, point index within that submission).
  std::vector<std::pair<u64, u32>> waiters;
};

struct Submission {
  u64 id = 0;
  std::string name;
  bool with_baseline = true;
  bool replayed = false;   // recovered from the on-disk submission journal
  bool cancelled = false;
  /// Daemon-side: journal removed + completion counted + waiters answered.
  bool finalized = false;
  size_t n_points = 0;
  size_t done = 0;         // resolved points (store hit or executed)
  size_t failed = 0;
  size_t from_store = 0;   // answered from the ResultStore at accept time
  size_t deduped = 0;      // attached to an in-flight execution
  /// Stored outcome payloads in grid order ("" until resolved / on failure).
  std::vector<std::string> payloads;
  /// result_key per grid point (grid order).
  std::vector<std::string> keys;

  bool complete() const { return done + failed >= n_points; }
};

class SubmissionQueue {
 public:
  /// Register a submission whose grid is already expanded. For each point,
  /// `resolved[i]` non-empty means the store answered it at accept time
  /// (payload recorded, no execution). The rest join the global queue or
  /// attach to an in-flight point with the same key.
  Submission& add_submission(u64 id, const std::string& name,
                             std::vector<api::GridPoint> points,
                             std::vector<std::string> keys,
                             std::vector<std::string> resolved,
                             bool with_baseline, bool replayed);

  /// Work stealing: the next point ready to execute (pending, past its
  /// backoff gate), round-robin across submissions with pending work.
  /// `last_sub` is the submission the calling worker slot last executed
  /// for (0 = none) — crossing submissions counts a steal. nullptr when
  /// nothing is ready.
  PointRun* take_next(double now_ms, u64 last_sub);

  /// The earliest backoff gate among pending points (0 when none are
  /// gated) — the daemon's poll-timeout hint.
  double next_ready_ms() const;

  /// Execution finished and the store holds a validated entry: resolve the
  /// point for every waiter. Returns the submissions completed by this.
  std::vector<u64> complete_point(PointRun* p, const std::string& payload);

  /// One attempt failed. Re-queues with a backoff gate while attempts
  /// remain, else marks the point (and its waiters' slots) failed.
  /// `timed_out` routes the timeout counter. Returns completed submissions.
  std::vector<u64> fail_attempt(PointRun* p, const std::string& why,
                                bool timed_out, u32 max_attempts,
                                u64 backoff_ms, double now_ms);

  /// Cancel a submission: detach it from its pending points (a point with
  /// no waiters left is dropped from the queue; running points finish and
  /// publish — the store keeps the work). Returns pending points dropped,
  /// or SIZE_MAX for an unknown id.
  size_t cancel(u64 id);

  Submission* find(u64 id);
  const std::map<u64, Submission>& submissions() const { return subs_; }
  PointRun* find_point(const std::string& key);

  /// Pending points not yet running (the queue depth the stats report).
  size_t queue_depth() const;
  bool idle() const { return queue_depth() == 0 && running_ == 0; }
  size_t running() const { return running_; }

  ServeStats& stats() { return stats_; }
  const ServeStats& stats() const { return stats_; }

 private:
  std::vector<u64> resolve_waiters(PointRun* p, const std::string& payload,
                                   bool failed);

  std::map<u64, Submission> subs_;
  std::map<std::string, PointRun> points_;  // key → the one in-flight run
  /// Per-submission backlog of keys not yet handed to a worker, plus the
  /// round-robin cursor over submission ids.
  std::map<u64, std::deque<std::string>> backlog_;
  /// Keys in retry backoff, scanned before the backlog (stale entries —
  /// points since completed or cancelled away — are dropped lazily).
  std::vector<std::string> backoff_;
  u64 rr_cursor_ = 0;
  size_t running_ = 0;
  ServeStats stats_;
};

}  // namespace fg::serve
