#include "src/serve/client.h"

#if !defined(_WIN32)

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace fg::serve {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool Client::connect(const std::string& socket_path, std::string* err) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    *err = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *err = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *err = "no daemon listening on " + socket_path + " (" +
           std::strerror(errno) + "); start one with `fgsim serve`";
    close();
    return false;
  }
  return true;
}

bool Client::send_raw(const std::string& bytes, std::string* err) {
  if (fd_ < 0) {
    *err = "not connected";
    return false;
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *err = std::string("send(): ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::read_response(std::string* line, std::string* err) {
  if (fd_ < 0) {
    *err = "not connected";
    return false;
  }
  while (!in_.take_line(line)) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    *err = n == 0 ? "daemon closed the connection"
                  : std::string("recv(): ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::call(const std::string& request_line, json::Value* resp,
                  std::string* err) {
  if (!send_raw(request_line + "\n", err)) return false;
  std::string line;
  if (!read_response(&line, err)) return false;
  if (!json::parse(line, resp) || !resp->is_object()) {
    *err = "unparsable response from daemon: " + line.substr(0, 200);
    return false;
  }
  return true;
}

}  // namespace fg::serve

#endif  // !_WIN32
