// Experiment harness: one-call runs for the three system variants the paper
// compares — unmonitored baseline, FireGuard, and software instrumentation —
// on identical workload traces and identical main-core hardware.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/baseline/instrument.h"
#include "src/soc/soc.h"
#include "src/trace/workload.h"

namespace fg::soc {

/// Table II configuration (the library defaults already encode it; this
/// names it explicitly for benches and tests).
SocConfig table2_soc();

/// Build a deployment. Passing `policy` sets BOTH the policy and
/// `policy_overridden` — assigning the field by hand risked the
/// inconsistent (policy set, flag false) state, which the allocator would
/// silently ignore; every in-tree caller now goes through here or the spec
/// layer (src/api), both of which keep the pair consistent.
KernelDeployment deploy(
    kernels::KernelKind kind, u32 n_engines,
    kernels::ProgModel model = kernels::ProgModel::kHybrid,
    bool use_ha = false,
    std::optional<core::SchedPolicy> policy = std::nullopt);

/// Table II with the detailed DRAM and page-table-walk timing models on —
/// the memory/stall-bound configuration the event scheduler's speedup
/// acceptance is measured against (tools/simspeed, skip-stress tests).
SocConfig memstall_soc();

/// The synthetic memstall workload (trace profile "memstall") at `n_insts`,
/// fixed seed 42, warmup one tenth — the stall-bound counterpart of
/// soc::paper_workload.
trace::WorkloadConfig memstall_workload(u64 n_insts);

/// Dynamic trace length for experiments: FG_TRACE_LEN env var, else 150000.
u64 default_trace_len();

/// Number of injected attacks per run: FG_ATTACKS env var, else 60
/// (the paper injects 50-100 per workload).
u32 default_attack_count();

struct RunResult {
  Cycle cycles = 0;
  u64 committed = 0;
  double ipc = 0.0;
  std::array<double, 5> stall_fractions{};
  std::vector<DetectionRecord> detections;
  u64 spurious = 0;
  u64 packets = 0;
  u64 planned_attacks = 0;
  double expansion = 1.0;  // software schemes: dynamic instruction expansion
  /// Scheduler diagnostics (FireGuard runs only). Excluded from every
  /// bit-identity comparison: the exact reference loop skips nothing.
  SchedStats sched{};
};

/// The regions a long-running instance of this workload would have resident
/// in L2/LLC (streaming buffers, hot globals, live heap, code, stack top).
/// Shared by run_baseline_cycles / run_fireguard / run_software and the
/// fuzzing subsystem's scenario runner, so all of them warm identically.
std::vector<std::pair<u64, u64>> default_warm_regions(
    const trace::WorkloadGen& gen, const trace::WorkloadProfile& profile);

/// Unmonitored baseline cycles for a workload (the slowdown denominator).
Cycle run_baseline_cycles(const trace::WorkloadConfig& wl, const SocConfig& sc);

/// Run FireGuard with the deployments in `sc.kernels` (PMC text bounds are
/// derived from the workload image automatically).
RunResult run_fireguard(const trace::WorkloadConfig& wl, SocConfig sc);

/// Run a software-instrumented variant on the bare core.
RunResult run_software(const trace::WorkloadConfig& wl, baseline::SwScheme scheme,
                       const SocConfig& sc);

/// Memoizes baseline cycles per (workload, baseline-relevant SoC config) so
/// sweeps do not recompute them. Thread-safe with per-key once-semantics.
///
/// The map mutex is held only for the entry look-up/insert — never across a
/// baseline simulation, so a miss on one key cannot serialize the whole
/// sweep behind it. Concurrent misses on the *same* key block on that key's
/// once_flag (one thread runs the baseline, the rest wait for its result);
/// misses on different keys run fully in parallel. `inflight_waits()`
/// counts the callers that had to wait on another worker's in-flight run —
/// the sweep summary prints it so lost parallelism is visible, not guessed.
class BaselineCache {
 public:
  /// `ran_baseline`, if given, is set to whether THIS call executed the
  /// baseline run (as opposed to reusing — or waiting for — another's).
  Cycle get(const trace::WorkloadConfig& wl, const SocConfig& sc,
            bool* ran_baseline = nullptr);

  u64 hits() const { return hits_.load(std::memory_order_relaxed); }
  u64 misses() const { return misses_.load(std::memory_order_relaxed); }
  u64 inflight_waits() const {
    return inflight_waits_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::once_flag once;
    std::atomic<bool> done{false};
    Cycle cycles = 0;
  };

  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> cache_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> inflight_waits_{0};
};

/// Convenience: geometric-mean slowdown over per-workload slowdowns.
double geomean_slowdown(const std::vector<double>& slowdowns);

}  // namespace fg::soc
