// Exact JSON round-trips for the simulator's configuration types.
//
// `to_json` writes EVERY field (the export of a config is self-contained
// and bit-exact: u64 counters stay u64, doubles are emitted with enough
// digits to reparse to the identical bits). `from_json` starts from a
// caller-supplied base — typically the library defaults (`table2_soc()`,
// `profile_by_name(name)`) — and overrides only the fields present, so a
// hand-written spec file can name a profile and tweak two knobs while an
// exported file reproduces its source struct field-for-field.
//
// This is the canonical serialization: the experiment spec (src/api) embeds
// these objects, and the BaselineCache keys on the compact dump of the
// baseline-relevant subset, so "same serialized sub-spec" and "same
// baseline run" are the same statement.
#pragma once

#include <optional>
#include <string>

#include "src/baseline/instrument.h"
#include "src/common/json.h"
#include "src/soc/soc.h"
#include "src/trace/workload.h"

namespace fg::soc {

// --- enum name maps (serialize via the canonical *_name functions) -------
std::optional<kernels::KernelKind> kernel_kind_from_name(const std::string&);
std::optional<kernels::ProgModel> prog_model_from_name(const std::string&);
std::optional<core::SchedPolicy> sched_policy_from_name(const std::string&);
std::optional<trace::AttackKind> attack_kind_from_name(const std::string&);
std::optional<baseline::SwScheme> sw_scheme_from_name(const std::string&);

// --- workload ------------------------------------------------------------
json::Value profile_to_json(const trace::WorkloadProfile& p);
/// Base: the named profile when "name" is known, else `base`.
bool profile_from_json(const json::Value& v, trace::WorkloadProfile* out,
                       std::string* err);
json::Value workload_to_json(const trace::WorkloadConfig& wl);
bool workload_from_json(const json::Value& v, trace::WorkloadConfig* out,
                        std::string* err);

// --- SoC -----------------------------------------------------------------
json::Value deployment_to_json(const KernelDeployment& d);
bool deployment_from_json(const json::Value& v, KernelDeployment* out,
                          std::string* err);
json::Value soc_to_json(const SocConfig& sc);
/// Starts from `*out` (pass `table2_soc()` for the paper defaults) and
/// overrides the fields present in `v`.
bool soc_from_json(const json::Value& v, SocConfig* out, std::string* err);

/// Canonical serialized baseline-relevant sub-spec: everything the
/// unmonitored baseline run reads (workload stream incl. attacks — attacks
/// inject real instructions — plus the full core + memory configuration and
/// the cycle cap). Compact one-line dump; used as the BaselineCache key.
std::string baseline_subspec_json(const trace::WorkloadConfig& wl,
                                  const SocConfig& sc);

}  // namespace fg::soc
