#include "src/soc/figures.h"

namespace fg::soc {

const std::vector<std::string>& paper_workloads() {
  static const std::vector<std::string> kNames = {
      "blackscholes", "bodytrack",     "dedup",     "ferret", "fluidanimate",
      "freqmine",     "streamcluster", "swaptions", "x264"};
  return kNames;
}

trace::WorkloadConfig paper_workload(
    const std::string& name, u64 n_insts,
    std::vector<std::pair<trace::AttackKind, u32>> attacks) {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name(name);
  wl.seed = 42;
  wl.n_insts = n_insts;
  wl.warmup_insts = n_insts / 10;
  wl.attacks = std::move(attacks);
  return wl;
}

std::vector<SweepPoint> fig10_points(u64 n_insts, bool quick) {
  struct Sweep {
    const char* series;
    kernels::KernelKind kind;
    std::vector<u32> engines;
  };
  const std::vector<Sweep> sweeps =
      quick ? std::vector<Sweep>{{"pmc", kernels::KernelKind::kPmc, {2, 4}},
                                 {"sanitizer", kernels::KernelKind::kAsan,
                                  {2, 4}}}
            : std::vector<Sweep>{
                  {"pmc", kernels::KernelKind::kPmc, {2, 4, 6}},
                  {"shadow", kernels::KernelKind::kShadowStack, {2, 4, 6}},
                  {"sanitizer", kernels::KernelKind::kAsan,
                   {2, 4, 6, 8, 10, 12}},
                  {"uaf", kernels::KernelKind::kUaf, {2, 4, 6, 8, 10, 12}}};
  std::vector<SweepPoint> out;
  for (const Sweep& s : sweeps) {
    for (const u32 n : s.engines) {
      for (const std::string& w : paper_workloads()) {
        SweepPoint p;
        p.name = "fig10/" + std::string(s.series) + "/" + std::to_string(n) +
                 "ucores/" + w;
        p.series = std::string(s.series) + "/" + std::to_string(n) + "ucores";
        p.wl = paper_workload(w, n_insts);
        p.sc = table2_soc();
        p.sc.kernels = {deploy(s.kind, n)};
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

}  // namespace fg::soc
