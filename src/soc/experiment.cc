#include "src/soc/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace fg::soc {

SocConfig table2_soc() { return SocConfig{}; }

KernelDeployment deploy(kernels::KernelKind kind, u32 n_engines,
                        kernels::ProgModel model, bool use_ha) {
  KernelDeployment d;
  d.kind = kind;
  d.n_engines = n_engines;
  d.model = model;
  d.use_ha = use_ha;
  return d;
}

namespace {
u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

u64 default_trace_len() { return env_u64("FG_TRACE_LEN", 150'000); }
u32 default_attack_count() {
  return static_cast<u32>(env_u64("FG_ATTACKS", 60));
}

/// The regions a long-running instance of this workload would have resident
/// in L2/LLC: streaming buffers, hot globals, the live heap, code, and the
/// top of the stack. Functionally warming them removes the compulsory-miss
/// transient that a short trace window would otherwise be dominated by.
std::vector<std::pair<u64, u64>> default_warm_regions(
    const trace::WorkloadGen& gen, const trace::WorkloadProfile& p) {
  std::vector<std::pair<u64, u64>> v;
  v.push_back({trace::kStreamBase, trace::kStreamBase + p.stream_footprint});
  v.push_back({trace::kGlobalBase,
               trace::kGlobalBase + 8ull * std::max<u32>(1, p.global_hot_words)});
  const u64 heap_len =
      std::min<u64>(4ull << 20, static_cast<u64>(p.live_target) *
                                        (p.mean_alloc_size * 5 / 4 + 64) +
                                    (64u << 10));
  v.push_back({trace::kHeapBase, trace::kHeapBase + heap_len});
  v.push_back({gen.text_lo(), gen.text_hi()});
  v.push_back({trace::kStackBase - (64u << 10), trace::kStackBase});
  return v;
}

Cycle run_baseline_cycles(const trace::WorkloadConfig& wl, const SocConfig& sc) {
  trace::WorkloadGen gen(wl);
  mem::MemHierarchy mem(sc.mem);
  for (const auto& [lo, hi] : default_warm_regions(gen, wl.profile)) {
    mem.warm_region(lo, hi);
  }
  mem.reset_stats();
  boom::BoomCore core(sc.core, mem, gen);
  core.run_to_end(nullptr, sc.max_fast_cycles);
  return core.now();
}

RunResult run_fireguard(const trace::WorkloadConfig& wl, SocConfig sc) {
  trace::WorkloadGen gen(wl);
  sc.kparams.text_lo = gen.text_lo();
  sc.kparams.text_hi = gen.text_hi();
  sc.warm_regions = default_warm_regions(gen, wl.profile);
  Soc soc(sc, gen);
  soc.run();

  RunResult r;
  r.cycles = soc.core_cycles();
  r.committed = soc.committed();
  r.ipc = r.cycles ? static_cast<double>(r.committed) / static_cast<double>(r.cycles)
                   : 0.0;
  r.stall_fractions = soc.stall_fractions();
  r.detections = soc.detections();
  r.spurious = soc.spurious_detections();
  r.packets = soc.total_packets_processed();
  r.planned_attacks = gen.planned_attacks();
  r.sched = soc.sched_stats();
  return r;
}

RunResult run_software(const trace::WorkloadConfig& wl, baseline::SwScheme scheme,
                       const SocConfig& sc) {
  trace::WorkloadGen gen(wl);
  baseline::InstrumentedSource inst(gen, scheme);
  mem::MemHierarchy mem(sc.mem);
  for (const auto& [lo, hi] : default_warm_regions(gen, wl.profile)) {
    mem.warm_region(lo, hi);
  }
  mem.reset_stats();
  boom::BoomCore core(sc.core, mem, inst);
  core.run_to_end(nullptr, sc.max_fast_cycles);

  RunResult r;
  r.cycles = core.now();
  r.committed = core.stats().committed;
  r.ipc = r.cycles ? static_cast<double>(r.committed) / static_cast<double>(r.cycles)
                   : 0.0;
  r.expansion = inst.expansion();
  return r;
}

namespace {
/// Serializes everything the unmonitored baseline run reads: the workload
/// stream (profile, seed, length, warmup, attack plan — attacks inject real
/// instructions) and the FULL core + memory configuration, because
/// run_baseline_cycles consumes all of sc.core and sc.mem. Enumerated
/// field-by-field rather than hashed from raw bytes (struct padding is
/// indeterminate); a new baseline-relevant field must be added here, which
/// is why the enumeration is exhaustive rather than limited to the knobs
/// today's benches vary.
std::string baseline_key(const trace::WorkloadConfig& wl, const SocConfig& sc) {
  std::string key = wl.profile.name;
  auto add = [&key](u64 v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "/%llx", static_cast<unsigned long long>(v));
    key += buf;
  };
  // Doubles keyed by bit pattern: exact, and NaN-free in practice.
  auto add_f = [&add](double d) {
    u64 bits;
    std::memcpy(&bits, &d, sizeof(bits));
    add(bits);
  };
  // The profile's fields, not just its name — a sweep may clone a named
  // profile and tweak a field (the sc knobs below get the same treatment).
  const trace::WorkloadProfile& pf = wl.profile;
  for (const double d : {pf.f_load, pf.f_store, pf.f_fp, pf.f_muldiv,
                         pf.f_branch, pf.f_call, pf.f_hard_branch,
                         pf.loop_frac, pf.mean_trips, pf.ptr_chase,
                         pf.m_stack, pf.m_global, pf.m_heap, pf.m_stream,
                         pf.stream_revisit, pf.allocs_per_kinst}) {
    add_f(d);
  }
  for (const u64 v :
       {static_cast<u64>(pf.n_funcs), static_cast<u64>(pf.blocks_per_func),
        static_cast<u64>(pf.block_len), pf.stream_footprint,
        u64{pf.global_hot_words}, u64{pf.mean_alloc_size},
        u64{pf.live_target}}) {
    add(v);
  }
  add(wl.seed);
  add(wl.n_insts);
  add(wl.warmup_insts);
  for (const auto& [kind, count] : wl.attacks) {
    add(static_cast<u64>(kind));
    add(count);
  }
  const boom::CoreConfig& c = sc.core;
  for (const u64 v :
       {u64{c.fetch_width}, u64{c.commit_width}, u64{c.rob_entries},
        u64{c.iq_entries}, u64{c.ldq_entries}, u64{c.stq_entries},
        u64{c.phys_regs}, u64{c.n_int_alu}, u64{c.n_fp}, u64{c.n_mem},
        u64{c.n_jmp}, u64{c.n_csr}, u64{c.lat_int}, u64{c.lat_mul},
        u64{c.lat_div}, u64{c.lat_fp}, u64{c.lat_fp_muldiv}, u64{c.lat_jmp},
        u64{c.front_depth}, u64{c.redirect_penalty}, u64{c.btb_bubble},
        u64{c.store_load_forwarding}, u64{c.stlf_latency},
        u64{c.predictor.bimodal_entries}, u64{c.predictor.tage_tables},
        u64{c.predictor.tage_entries}, u64{c.predictor.min_history},
        u64{c.predictor.max_history}, u64{c.predictor.btb_entries},
        u64{c.predictor.ras_entries}}) {
    add(v);
  }
  const mem::HierarchyConfig& m = sc.mem;
  auto add_cache = [&](const mem::CacheConfig& cc) {
    add(cc.size_bytes);
    add(cc.ways);
    add(cc.line_bytes);
    add(cc.hit_latency);
    add(cc.mshrs);
    add(cc.writeback_penalty);
  };
  add_cache(m.l1i);
  add_cache(m.l1d);
  add_cache(m.l2);
  add_cache(m.llc);
  add(m.dram_latency);
  for (const mem::TlbConfig& t : {m.itlb, m.dtlb}) {
    add(t.entries);
    add(t.page_bytes);
    add(t.walk_latency);
  }
  add(m.detailed_dram);
  for (const u64 v : {u64{m.dram.n_banks}, u64{m.dram.row_bytes},
                      u64{m.dram.t_cas}, u64{m.dram.t_rcd}, u64{m.dram.t_rp},
                      u64{m.dram.burst_cycles}, u64{m.dram.max_requests}}) {
    add(v);
  }
  add(m.detailed_ptw);
  for (const u64 v : {u64{m.ptw.levels}, u64{m.ptw.page_bits},
                      u64{m.ptw.index_bits}, m.ptw.root_base,
                      u64{m.ptw.walker_overhead}}) {
    add(v);
  }
  add(sc.max_fast_cycles);
  return key;
}
}  // namespace

Cycle BaselineCache::get(const trace::WorkloadConfig& wl, const SocConfig& sc,
                         bool* ran_baseline) {
  const std::string key = baseline_key(wl, sc);

  Entry* e = nullptr;
  {
    // Map access only — the lock is released before any simulation runs, so
    // one key's miss never blocks other keys (or other sweeps' points).
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_.emplace(key, std::make_unique<Entry>()).first;
    }
    e = it->second.get();
  }
  // Entries are never erased, so `e` stays valid outside the lock; the
  // once_flag serializes the actual baseline run per key.
  const bool wait_inflight = !e->done.load(std::memory_order_acquire);
  bool ran = false;
  std::call_once(e->once, [&] {
    e->cycles = run_baseline_cycles(wl, sc);
    e->done.store(true, std::memory_order_release);
    ran = true;
  });
  if (ran) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    // The entry existed but its baseline had not finished when we arrived:
    // this call blocked on another worker's in-flight run.
    if (wait_inflight) inflight_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  if (ran_baseline != nullptr) *ran_baseline = ran;
  return e->cycles;
}

double geomean_slowdown(const std::vector<double>& slowdowns) {
  return geomean(slowdowns);
}

}  // namespace fg::soc
