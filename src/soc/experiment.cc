#include "src/soc/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check.h"
#include "src/common/env.h"
#include "src/common/stats.h"
#include "src/soc/config_json.h"

namespace fg::soc {

SocConfig table2_soc() { return SocConfig{}; }

SocConfig memstall_soc() {
  SocConfig sc = table2_soc();
  sc.mem.detailed_dram = true;
  sc.mem.detailed_ptw = true;
  return sc;
}

trace::WorkloadConfig memstall_workload(u64 n_insts) {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name("memstall");
  wl.seed = 42;
  wl.n_insts = n_insts;
  wl.warmup_insts = n_insts / 10;
  return wl;
}

KernelDeployment deploy(kernels::KernelKind kind, u32 n_engines,
                        kernels::ProgModel model, bool use_ha,
                        std::optional<core::SchedPolicy> policy) {
  KernelDeployment d;
  d.kind = kind;
  d.n_engines = n_engines;
  d.model = model;
  d.use_ha = use_ha;
  if (policy) {
    d.policy = *policy;
    d.policy_overridden = true;
  }
  return d;
}

// Strict parses: a malformed FG_TRACE_LEN / FG_ATTACKS aborts loudly
// instead of silently simulating the wrong experiment (src/common/env.h).
u64 default_trace_len() { return env_u64_or("FG_TRACE_LEN", 150'000); }
u32 default_attack_count() { return env_u32_or("FG_ATTACKS", 60); }

/// The regions a long-running instance of this workload would have resident
/// in L2/LLC: streaming buffers, hot globals, the live heap, code, and the
/// top of the stack. Functionally warming them removes the compulsory-miss
/// transient that a short trace window would otherwise be dominated by.
std::vector<std::pair<u64, u64>> default_warm_regions(
    const trace::WorkloadGen& gen, const trace::WorkloadProfile& p) {
  std::vector<std::pair<u64, u64>> v;
  v.push_back({trace::kStreamBase, trace::kStreamBase + p.stream_footprint});
  v.push_back({trace::kGlobalBase,
               trace::kGlobalBase + 8ull * std::max<u32>(1, p.global_hot_words)});
  const u64 heap_len =
      std::min<u64>(4ull << 20, static_cast<u64>(p.live_target) *
                                        (p.mean_alloc_size * 5 / 4 + 64) +
                                    (64u << 10));
  v.push_back({trace::kHeapBase, trace::kHeapBase + heap_len});
  v.push_back({gen.text_lo(), gen.text_hi()});
  v.push_back({trace::kStackBase - (64u << 10), trace::kStackBase});
  return v;
}

Cycle run_baseline_cycles(const trace::WorkloadConfig& wl, const SocConfig& sc) {
  trace::WorkloadGen gen(wl);
  mem::MemHierarchy mem(sc.mem);
  for (const auto& [lo, hi] : default_warm_regions(gen, wl.profile)) {
    mem.warm_region(lo, hi);
  }
  mem.reset_stats();
  boom::BoomCore core(sc.core, mem, gen);
  core.run_to_end(nullptr, sc.max_fast_cycles);
  return core.now();
}

RunResult run_fireguard(const trace::WorkloadConfig& wl, SocConfig sc) {
  trace::WorkloadGen gen(wl);
  sc.kparams.text_lo = gen.text_lo();
  sc.kparams.text_hi = gen.text_hi();
  sc.warm_regions = default_warm_regions(gen, wl.profile);
  Soc soc(sc, gen);
  soc.run();

  RunResult r;
  r.cycles = soc.core_cycles();
  r.committed = soc.committed();
  r.ipc = r.cycles ? static_cast<double>(r.committed) / static_cast<double>(r.cycles)
                   : 0.0;
  r.stall_fractions = soc.stall_fractions();
  r.detections = soc.detections();
  r.spurious = soc.spurious_detections();
  r.packets = soc.total_packets_processed();
  r.planned_attacks = gen.planned_attacks();
  r.sched = soc.sched_stats();
  return r;
}

RunResult run_software(const trace::WorkloadConfig& wl, baseline::SwScheme scheme,
                       const SocConfig& sc) {
  trace::WorkloadGen gen(wl);
  baseline::InstrumentedSource inst(gen, scheme);
  mem::MemHierarchy mem(sc.mem);
  for (const auto& [lo, hi] : default_warm_regions(gen, wl.profile)) {
    mem.warm_region(lo, hi);
  }
  mem.reset_stats();
  boom::BoomCore core(sc.core, mem, inst);
  core.run_to_end(nullptr, sc.max_fast_cycles);

  RunResult r;
  r.cycles = core.now();
  r.committed = core.stats().committed;
  r.ipc = r.cycles ? static_cast<double>(r.committed) / static_cast<double>(r.cycles)
                   : 0.0;
  r.expansion = inst.expansion();
  return r;
}

Cycle BaselineCache::get(const trace::WorkloadConfig& wl, const SocConfig& sc,
                         bool* ran_baseline) {
  // Canonical serialized baseline-relevant sub-spec (config_json.h): the
  // key IS the spec, so two points share a baseline exactly when their
  // serialized baseline-relevant configuration is identical.
  const std::string key = baseline_subspec_json(wl, sc);

  Entry* e = nullptr;
  {
    // Map access only — the lock is released before any simulation runs, so
    // one key's miss never blocks other keys (or other sweeps' points).
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      it = cache_.emplace(key, std::make_unique<Entry>()).first;
    }
    e = it->second.get();
  }
  // Entries are never erased, so `e` stays valid outside the lock; the
  // once_flag serializes the actual baseline run per key.
  const bool wait_inflight = !e->done.load(std::memory_order_acquire);
  bool ran = false;
  std::call_once(e->once, [&] {
    e->cycles = run_baseline_cycles(wl, sc);
    e->done.store(true, std::memory_order_release);
    ran = true;
  });
  if (ran) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    // The entry existed but its baseline had not finished when we arrived:
    // this call blocked on another worker's in-flight run.
    if (wait_inflight) inflight_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  if (ran_baseline != nullptr) *ran_baseline = ran;
  return e->cycles;
}

double geomean_slowdown(const std::vector<double>& slowdowns) {
  return geomean(slowdowns);
}

}  // namespace fg::soc
