#include "src/soc/experiment.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace fg::soc {

SocConfig table2_soc() { return SocConfig{}; }

KernelDeployment deploy(kernels::KernelKind kind, u32 n_engines,
                        kernels::ProgModel model, bool use_ha) {
  KernelDeployment d;
  d.kind = kind;
  d.n_engines = n_engines;
  d.model = model;
  d.use_ha = use_ha;
  return d;
}

namespace {
u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}
}  // namespace

u64 default_trace_len() { return env_u64("FG_TRACE_LEN", 150'000); }
u32 default_attack_count() {
  return static_cast<u32>(env_u64("FG_ATTACKS", 60));
}

namespace {
/// The regions a long-running instance of this workload would have resident
/// in L2/LLC: streaming buffers, hot globals, the live heap, code, and the
/// top of the stack. Functionally warming them removes the compulsory-miss
/// transient that a short trace window would otherwise be dominated by.
std::vector<std::pair<u64, u64>> warm_regions_for(const trace::WorkloadGen& gen,
                                                  const trace::WorkloadProfile& p) {
  std::vector<std::pair<u64, u64>> v;
  v.push_back({trace::kStreamBase, trace::kStreamBase + p.stream_footprint});
  v.push_back({trace::kGlobalBase,
               trace::kGlobalBase + 8ull * std::max<u32>(1, p.global_hot_words)});
  const u64 heap_len =
      std::min<u64>(4ull << 20, static_cast<u64>(p.live_target) *
                                        (p.mean_alloc_size * 5 / 4 + 64) +
                                    (64u << 10));
  v.push_back({trace::kHeapBase, trace::kHeapBase + heap_len});
  v.push_back({gen.text_lo(), gen.text_hi()});
  v.push_back({trace::kStackBase - (64u << 10), trace::kStackBase});
  return v;
}
}  // namespace

Cycle run_baseline_cycles(const trace::WorkloadConfig& wl, const SocConfig& sc) {
  trace::WorkloadGen gen(wl);
  mem::MemHierarchy mem(sc.mem);
  for (const auto& [lo, hi] : warm_regions_for(gen, wl.profile)) {
    mem.warm_region(lo, hi);
  }
  mem.reset_stats();
  boom::BoomCore core(sc.core, mem, gen);
  core.run_to_end(nullptr, sc.max_fast_cycles);
  return core.now();
}

RunResult run_fireguard(const trace::WorkloadConfig& wl, SocConfig sc) {
  trace::WorkloadGen gen(wl);
  sc.kparams.text_lo = gen.text_lo();
  sc.kparams.text_hi = gen.text_hi();
  sc.warm_regions = warm_regions_for(gen, wl.profile);
  Soc soc(sc, gen);
  soc.run();

  RunResult r;
  r.cycles = soc.core_cycles();
  r.committed = soc.committed();
  r.ipc = r.cycles ? static_cast<double>(r.committed) / static_cast<double>(r.cycles)
                   : 0.0;
  r.stall_fractions = soc.stall_fractions();
  r.detections = soc.detections();
  r.spurious = soc.spurious_detections();
  r.packets = soc.total_packets_processed();
  r.planned_attacks = gen.planned_attacks();
  return r;
}

RunResult run_software(const trace::WorkloadConfig& wl, baseline::SwScheme scheme,
                       const SocConfig& sc) {
  trace::WorkloadGen gen(wl);
  baseline::InstrumentedSource inst(gen, scheme);
  mem::MemHierarchy mem(sc.mem);
  for (const auto& [lo, hi] : warm_regions_for(gen, wl.profile)) {
    mem.warm_region(lo, hi);
  }
  mem.reset_stats();
  boom::BoomCore core(sc.core, mem, inst);
  core.run_to_end(nullptr, sc.max_fast_cycles);

  RunResult r;
  r.cycles = core.now();
  r.committed = core.stats().committed;
  r.ipc = r.cycles ? static_cast<double>(r.committed) / static_cast<double>(r.cycles)
                   : 0.0;
  r.expansion = inst.expansion();
  return r;
}

Cycle BaselineCache::get(const trace::WorkloadConfig& wl, const SocConfig& sc) {
  // The key must cover everything that shapes the instruction stream —
  // including the attack plan, which injects real instructions.
  std::string key = wl.profile.name;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/%llu/%llu",
                static_cast<unsigned long long>(wl.seed),
                static_cast<unsigned long long>(wl.n_insts));
  key += buf;
  for (const auto& [kind, count] : wl.attacks) {
    std::snprintf(buf, sizeof(buf), "/a%u x%u", static_cast<unsigned>(kind), count);
    key += buf;
  }
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  const Cycle c = run_baseline_cycles(wl, sc);
  cache_.emplace(key, c);
  return c;
}

double geomean_slowdown(const std::vector<double>& slowdowns) {
  return geomean(slowdowns);
}

}  // namespace fg::soc
