#include "src/soc/config_json.h"

#include "src/trace/profile.h"

namespace fg::soc {

namespace {

using json::Value;

// -- tiny field helpers: `put` writes, `rd` overrides-if-present ----------
void put(Value& o, const char* k, u64 v) { o.set(k, Value::of(v)); }
void put_u(Value& o, const char* k, u32 v) { o.set(k, Value::of(v)); }
void put_i(Value& o, const char* k, int v) {
  o.set(k, Value::of(static_cast<u64>(v)));
}
void put_d(Value& o, const char* k, double v) {
  o.set(k, Value::of_double(v));
}
void put_b(Value& o, const char* k, bool v) { o.set(k, Value::of_bool(v)); }

void rd(const Value& v, const char* k, u64* out) { *out = v.get_u64(k, *out); }
void rd(const Value& v, const char* k, u32* out) {
  *out = static_cast<u32>(v.get_u64(k, *out));
}
void rd(const Value& v, const char* k, int* out) {
  *out = static_cast<int>(v.get_u64(k, static_cast<u64>(*out)));
}
void rd(const Value& v, const char* k, double* out) {
  *out = v.get_double(k, *out);
}
void rd(const Value& v, const char* k, bool* out) {
  *out = v.get_bool(k, *out);
}

/// Typo guard: every key in `v` must exist in `model` (a fully-populated
/// to_json of the same type), so the accepted schema IS the emitted schema.
bool reject_unknown(const Value& v, const Value& model, const char* ctx,
                    std::string* err) {
  if (!v.is_object()) {
    if (err != nullptr) *err = std::string(ctx) + ": expected an object";
    return false;
  }
  for (const auto& [k, e] : v.obj) {
    (void)e;
    if (model.obj.find(k) == model.obj.end()) {
      if (err != nullptr) {
        *err = std::string(ctx) + ": unknown key \"" + k + "\"";
      }
      return false;
    }
  }
  return true;
}

// -- leaf config objects --------------------------------------------------
Value cache_to_json(const mem::CacheConfig& c) {
  Value v = Value::object();
  put_u(v, "size_bytes", c.size_bytes);
  put_u(v, "ways", c.ways);
  put_u(v, "line_bytes", c.line_bytes);
  put_u(v, "hit_latency", c.hit_latency);
  put_u(v, "mshrs", c.mshrs);
  put_u(v, "writeback_penalty", c.writeback_penalty);
  return v;
}

bool cache_from_json(const Value& v, mem::CacheConfig* out, const char* ctx,
                     std::string* err) {
  if (!reject_unknown(v, cache_to_json(*out), ctx, err)) return false;
  rd(v, "size_bytes", &out->size_bytes);
  rd(v, "ways", &out->ways);
  rd(v, "line_bytes", &out->line_bytes);
  rd(v, "hit_latency", &out->hit_latency);
  rd(v, "mshrs", &out->mshrs);
  rd(v, "writeback_penalty", &out->writeback_penalty);
  return true;
}

Value tlb_to_json(const mem::TlbConfig& t) {
  Value v = Value::object();
  put_u(v, "entries", t.entries);
  put_u(v, "page_bytes", t.page_bytes);
  put_u(v, "walk_latency", t.walk_latency);
  return v;
}

bool tlb_from_json(const Value& v, mem::TlbConfig* out, const char* ctx,
                   std::string* err) {
  if (!reject_unknown(v, tlb_to_json(*out), ctx, err)) return false;
  rd(v, "entries", &out->entries);
  rd(v, "page_bytes", &out->page_bytes);
  rd(v, "walk_latency", &out->walk_latency);
  return true;
}

Value dram_to_json(const mem::DramConfig& d) {
  Value v = Value::object();
  put_u(v, "n_banks", d.n_banks);
  put_u(v, "row_bytes", d.row_bytes);
  put_u(v, "t_cas", d.t_cas);
  put_u(v, "t_rcd", d.t_rcd);
  put_u(v, "t_rp", d.t_rp);
  put_u(v, "burst_cycles", d.burst_cycles);
  put_u(v, "max_requests", d.max_requests);
  return v;
}

bool dram_from_json(const Value& v, mem::DramConfig* out, std::string* err) {
  if (!reject_unknown(v, dram_to_json(*out), "soc.mem.dram", err)) return false;
  rd(v, "n_banks", &out->n_banks);
  rd(v, "row_bytes", &out->row_bytes);
  rd(v, "t_cas", &out->t_cas);
  rd(v, "t_rcd", &out->t_rcd);
  rd(v, "t_rp", &out->t_rp);
  rd(v, "burst_cycles", &out->burst_cycles);
  rd(v, "max_requests", &out->max_requests);
  return true;
}

Value ptw_to_json(const mem::PtwConfig& p) {
  Value v = Value::object();
  put_u(v, "levels", p.levels);
  put_u(v, "page_bits", p.page_bits);
  put_u(v, "index_bits", p.index_bits);
  put(v, "root_base", p.root_base);
  put_u(v, "walker_overhead", p.walker_overhead);
  return v;
}

bool ptw_from_json(const Value& v, mem::PtwConfig* out, std::string* err) {
  if (!reject_unknown(v, ptw_to_json(*out), "soc.mem.ptw", err)) return false;
  rd(v, "levels", &out->levels);
  rd(v, "page_bits", &out->page_bits);
  rd(v, "index_bits", &out->index_bits);
  rd(v, "root_base", &out->root_base);
  rd(v, "walker_overhead", &out->walker_overhead);
  return true;
}

Value predictor_to_json(const boom::PredictorConfig& p) {
  Value v = Value::object();
  put_u(v, "bimodal_entries", p.bimodal_entries);
  put_u(v, "tage_tables", p.tage_tables);
  put_u(v, "tage_entries", p.tage_entries);
  put_u(v, "min_history", p.min_history);
  put_u(v, "max_history", p.max_history);
  put_u(v, "btb_entries", p.btb_entries);
  put_u(v, "ras_entries", p.ras_entries);
  return v;
}

bool predictor_from_json(const Value& v, boom::PredictorConfig* out,
                         std::string* err) {
  if (!reject_unknown(v, predictor_to_json(*out), "soc.core.predictor", err)) {
    return false;
  }
  rd(v, "bimodal_entries", &out->bimodal_entries);
  rd(v, "tage_tables", &out->tage_tables);
  rd(v, "tage_entries", &out->tage_entries);
  rd(v, "min_history", &out->min_history);
  rd(v, "max_history", &out->max_history);
  rd(v, "btb_entries", &out->btb_entries);
  rd(v, "ras_entries", &out->ras_entries);
  return true;
}

Value core_to_json(const boom::CoreConfig& c) {
  Value v = Value::object();
  put_u(v, "fetch_width", c.fetch_width);
  put_u(v, "commit_width", c.commit_width);
  put_u(v, "rob_entries", c.rob_entries);
  put_u(v, "iq_entries", c.iq_entries);
  put_u(v, "ldq_entries", c.ldq_entries);
  put_u(v, "stq_entries", c.stq_entries);
  put_u(v, "phys_regs", c.phys_regs);
  put_u(v, "n_int_alu", c.n_int_alu);
  put_u(v, "n_fp", c.n_fp);
  put_u(v, "n_mem", c.n_mem);
  put_u(v, "n_jmp", c.n_jmp);
  put_u(v, "n_csr", c.n_csr);
  put_u(v, "lat_int", c.lat_int);
  put_u(v, "lat_mul", c.lat_mul);
  put_u(v, "lat_div", c.lat_div);
  put_u(v, "lat_fp", c.lat_fp);
  put_u(v, "lat_fp_muldiv", c.lat_fp_muldiv);
  put_u(v, "lat_jmp", c.lat_jmp);
  put_u(v, "front_depth", c.front_depth);
  put_u(v, "redirect_penalty", c.redirect_penalty);
  put_u(v, "btb_bubble", c.btb_bubble);
  put_b(v, "store_load_forwarding", c.store_load_forwarding);
  put_u(v, "stlf_latency", c.stlf_latency);
  v.set("predictor", predictor_to_json(c.predictor));
  return v;
}

bool core_from_json(const Value& v, boom::CoreConfig* out, std::string* err) {
  if (!reject_unknown(v, core_to_json(*out), "soc.core", err)) return false;
  rd(v, "fetch_width", &out->fetch_width);
  rd(v, "commit_width", &out->commit_width);
  rd(v, "rob_entries", &out->rob_entries);
  rd(v, "iq_entries", &out->iq_entries);
  rd(v, "ldq_entries", &out->ldq_entries);
  rd(v, "stq_entries", &out->stq_entries);
  rd(v, "phys_regs", &out->phys_regs);
  rd(v, "n_int_alu", &out->n_int_alu);
  rd(v, "n_fp", &out->n_fp);
  rd(v, "n_mem", &out->n_mem);
  rd(v, "n_jmp", &out->n_jmp);
  rd(v, "n_csr", &out->n_csr);
  rd(v, "lat_int", &out->lat_int);
  rd(v, "lat_mul", &out->lat_mul);
  rd(v, "lat_div", &out->lat_div);
  rd(v, "lat_fp", &out->lat_fp);
  rd(v, "lat_fp_muldiv", &out->lat_fp_muldiv);
  rd(v, "lat_jmp", &out->lat_jmp);
  rd(v, "front_depth", &out->front_depth);
  rd(v, "redirect_penalty", &out->redirect_penalty);
  rd(v, "btb_bubble", &out->btb_bubble);
  rd(v, "store_load_forwarding", &out->store_load_forwarding);
  rd(v, "stlf_latency", &out->stlf_latency);
  if (const Value* p = v.get("predictor")) {
    if (!predictor_from_json(*p, &out->predictor, err)) return false;
  }
  return true;
}

Value mem_to_json(const mem::HierarchyConfig& m) {
  Value v = Value::object();
  v.set("l1i", cache_to_json(m.l1i));
  v.set("l1d", cache_to_json(m.l1d));
  v.set("l2", cache_to_json(m.l2));
  v.set("llc", cache_to_json(m.llc));
  put_u(v, "dram_latency", m.dram_latency);
  v.set("itlb", tlb_to_json(m.itlb));
  v.set("dtlb", tlb_to_json(m.dtlb));
  put_b(v, "detailed_dram", m.detailed_dram);
  v.set("dram", dram_to_json(m.dram));
  put_b(v, "detailed_ptw", m.detailed_ptw);
  v.set("ptw", ptw_to_json(m.ptw));
  return v;
}

bool mem_from_json(const Value& v, mem::HierarchyConfig* out,
                   std::string* err) {
  if (!reject_unknown(v, mem_to_json(*out), "soc.mem", err)) return false;
  struct CacheField {
    const char* key;
    mem::CacheConfig* dst;
  };
  for (const CacheField f : {CacheField{"l1i", &out->l1i},
                             CacheField{"l1d", &out->l1d},
                             CacheField{"l2", &out->l2},
                             CacheField{"llc", &out->llc}}) {
    if (const Value* c = v.get(f.key)) {
      if (!cache_from_json(*c, f.dst, f.key, err)) return false;
    }
  }
  rd(v, "dram_latency", &out->dram_latency);
  if (const Value* t = v.get("itlb")) {
    if (!tlb_from_json(*t, &out->itlb, "soc.mem.itlb", err)) return false;
  }
  if (const Value* t = v.get("dtlb")) {
    if (!tlb_from_json(*t, &out->dtlb, "soc.mem.dtlb", err)) return false;
  }
  rd(v, "detailed_dram", &out->detailed_dram);
  if (const Value* d = v.get("dram")) {
    if (!dram_from_json(*d, &out->dram, err)) return false;
  }
  rd(v, "detailed_ptw", &out->detailed_ptw);
  if (const Value* p = v.get("ptw")) {
    if (!ptw_from_json(*p, &out->ptw, err)) return false;
  }
  return true;
}

Value frontend_to_json(const core::FrontendConfig& f) {
  Value v = Value::object();
  put_u(v, "filter_width", f.filter.width);
  put_u(v, "filter_fifo_depth", f.filter.fifo_depth);
  put_u(v, "cdc_depth", f.cdc_depth);
  put_u(v, "freq_ratio", f.freq_ratio);
  put_u(v, "mapper_width", f.mapper_width);
  return v;
}

bool frontend_from_json(const Value& v, core::FrontendConfig* out,
                        std::string* err) {
  if (!reject_unknown(v, frontend_to_json(*out), "soc.frontend", err)) {
    return false;
  }
  rd(v, "filter_width", &out->filter.width);
  rd(v, "filter_fifo_depth", &out->filter.fifo_depth);
  rd(v, "cdc_depth", &out->cdc_depth);
  rd(v, "freq_ratio", &out->freq_ratio);
  rd(v, "mapper_width", &out->mapper_width);
  return true;
}

Value ucore_to_json(const ucore::UCoreConfig& u) {
  Value v = Value::object();
  put_u(v, "msgq_depth", u.msgq_depth);
  put_b(v, "isax_ma_stage", u.isax_ma_stage);
  put_u(v, "postcommit_base", u.postcommit_base);
  put_u(v, "postcommit_contention", u.postcommit_contention);
  put_u(v, "postcommit_hazard", u.postcommit_hazard);
  v.set("dcache", cache_to_json(u.dcache));
  v.set("icache", cache_to_json(u.icache));
  v.set("utlb", tlb_to_json(u.utlb));
  put_u(v, "l2_latency", u.l2_latency);
  put_u(v, "mem_latency", u.mem_latency);
  return v;
}

bool ucore_from_json(const Value& v, ucore::UCoreConfig* out,
                     std::string* err) {
  if (!reject_unknown(v, ucore_to_json(*out), "soc.ucore", err)) return false;
  rd(v, "msgq_depth", &out->msgq_depth);
  rd(v, "isax_ma_stage", &out->isax_ma_stage);
  rd(v, "postcommit_base", &out->postcommit_base);
  rd(v, "postcommit_contention", &out->postcommit_contention);
  rd(v, "postcommit_hazard", &out->postcommit_hazard);
  if (const Value* c = v.get("dcache")) {
    if (!cache_from_json(*c, &out->dcache, "soc.ucore.dcache", err)) {
      return false;
    }
  }
  if (const Value* c = v.get("icache")) {
    if (!cache_from_json(*c, &out->icache, "soc.ucore.icache", err)) {
      return false;
    }
  }
  if (const Value* t = v.get("utlb")) {
    if (!tlb_from_json(*t, &out->utlb, "soc.ucore.utlb", err)) return false;
  }
  rd(v, "l2_latency", &out->l2_latency);
  rd(v, "mem_latency", &out->mem_latency);
  return true;
}

/// KernelParams minus text_lo/text_hi, which are DERIVED from the workload
/// image at session start (serializing them would freeze stale bounds).
Value kparams_to_json(const kernels::KernelParams& k) {
  Value v = Value::object();
  put(v, "shadow_base", k.shadow_base);
  put(v, "shadow_timing_base", k.shadow_timing_base);
  put(v, "sstack_base", k.sstack_base);
  put(v, "quarantine_base", k.quarantine_base);
  put_u(v, "quarantine_slots", k.quarantine_slots);
  put_u(v, "unroll", k.unroll);
  return v;
}

bool kparams_from_json(const Value& v, kernels::KernelParams* out,
                       std::string* err) {
  if (!reject_unknown(v, kparams_to_json(*out), "soc.kparams", err)) {
    return false;
  }
  rd(v, "shadow_base", &out->shadow_base);
  rd(v, "shadow_timing_base", &out->shadow_timing_base);
  rd(v, "sstack_base", &out->sstack_base);
  rd(v, "quarantine_base", &out->quarantine_base);
  rd(v, "quarantine_slots", &out->quarantine_slots);
  rd(v, "unroll", &out->unroll);
  return true;
}

bool known_profile_name(const std::string& name) {
  for (const trace::WorkloadProfile& p : trace::parsec_profiles()) {
    if (p.name == name) return true;
  }
  return false;
}

}  // namespace

// --- enum maps -----------------------------------------------------------

std::optional<kernels::KernelKind> kernel_kind_from_name(
    const std::string& n) {
  using kernels::KernelKind;
  for (const KernelKind k : {KernelKind::kPmc, KernelKind::kShadowStack,
                             KernelKind::kAsan, KernelKind::kUaf}) {
    if (n == kernels::kernel_name(k)) return k;
  }
  // Short CLI spellings, accepted on input for ergonomics.
  if (n == "shadow" || n == "ss") return KernelKind::kShadowStack;
  return std::nullopt;
}

std::optional<kernels::ProgModel> prog_model_from_name(const std::string& n) {
  using kernels::ProgModel;
  for (const ProgModel m : {ProgModel::kConventional, ProgModel::kDuff,
                            ProgModel::kUnrolled, ProgModel::kHybrid}) {
    if (n == kernels::prog_model_name(m)) return m;
  }
  return std::nullopt;
}

std::optional<core::SchedPolicy> sched_policy_from_name(const std::string& n) {
  using core::SchedPolicy;
  for (const SchedPolicy p :
       {SchedPolicy::kFixed, SchedPolicy::kRoundRobin, SchedPolicy::kBlock}) {
    if (n == core::sched_policy_name(p)) return p;
  }
  return std::nullopt;
}

std::optional<trace::AttackKind> attack_kind_from_name(const std::string& n) {
  using trace::AttackKind;
  for (const AttackKind k :
       {AttackKind::kPcHijack, AttackKind::kRetCorrupt, AttackKind::kHeapOob,
        AttackKind::kUseAfterFree}) {
    if (n == trace::attack_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::optional<baseline::SwScheme> sw_scheme_from_name(const std::string& n) {
  using baseline::SwScheme;
  for (const SwScheme s : {SwScheme::kShadowStackLlvm, SwScheme::kAsanAarch64,
                           SwScheme::kAsanX8664, SwScheme::kDangSan}) {
    if (n == baseline::sw_scheme_name(s)) return s;
  }
  // Short CLI spellings (the legacy fireguard-sim --software values).
  if (n == "shadow_llvm") return SwScheme::kShadowStackLlvm;
  if (n == "asan_x86") return SwScheme::kAsanX8664;
  if (n == "dangsan") return SwScheme::kDangSan;
  return std::nullopt;
}

// --- workload ------------------------------------------------------------

json::Value profile_to_json(const trace::WorkloadProfile& p) {
  Value v = Value::object();
  v.set("name", Value::of_str(p.name));
  put_d(v, "f_load", p.f_load);
  put_d(v, "f_store", p.f_store);
  put_d(v, "f_fp", p.f_fp);
  put_d(v, "f_muldiv", p.f_muldiv);
  put_d(v, "f_branch", p.f_branch);
  put_d(v, "f_call", p.f_call);
  put_d(v, "f_hard_branch", p.f_hard_branch);
  put_i(v, "n_funcs", p.n_funcs);
  put_i(v, "blocks_per_func", p.blocks_per_func);
  put_i(v, "block_len", p.block_len);
  put_d(v, "loop_frac", p.loop_frac);
  put_d(v, "mean_trips", p.mean_trips);
  put_d(v, "ptr_chase", p.ptr_chase);
  put_d(v, "m_stack", p.m_stack);
  put_d(v, "m_global", p.m_global);
  put_d(v, "m_heap", p.m_heap);
  put_d(v, "m_stream", p.m_stream);
  put(v, "stream_footprint", p.stream_footprint);
  put_d(v, "stream_revisit", p.stream_revisit);
  put_u(v, "global_hot_words", p.global_hot_words);
  put_d(v, "allocs_per_kinst", p.allocs_per_kinst);
  put_u(v, "mean_alloc_size", p.mean_alloc_size);
  put_u(v, "live_target", p.live_target);
  return v;
}

bool profile_from_json(const json::Value& v, trace::WorkloadProfile* out,
                       std::string* err) {
  if (!reject_unknown(v, profile_to_json(*out), "workload.profile", err)) {
    return false;
  }
  // A known name rebases on the library profile, so a spec can say just
  // {"name": "x264"}; unknown names are custom profiles built field by
  // field on top of the current base.
  const std::string name = v.get_str("name");
  if (!name.empty()) {
    if (known_profile_name(name)) {
      *out = trace::profile_by_name(name);
    } else {
      out->name = name;
    }
  }
  rd(v, "f_load", &out->f_load);
  rd(v, "f_store", &out->f_store);
  rd(v, "f_fp", &out->f_fp);
  rd(v, "f_muldiv", &out->f_muldiv);
  rd(v, "f_branch", &out->f_branch);
  rd(v, "f_call", &out->f_call);
  rd(v, "f_hard_branch", &out->f_hard_branch);
  rd(v, "n_funcs", &out->n_funcs);
  rd(v, "blocks_per_func", &out->blocks_per_func);
  rd(v, "block_len", &out->block_len);
  rd(v, "loop_frac", &out->loop_frac);
  rd(v, "mean_trips", &out->mean_trips);
  rd(v, "ptr_chase", &out->ptr_chase);
  rd(v, "m_stack", &out->m_stack);
  rd(v, "m_global", &out->m_global);
  rd(v, "m_heap", &out->m_heap);
  rd(v, "m_stream", &out->m_stream);
  rd(v, "stream_footprint", &out->stream_footprint);
  rd(v, "stream_revisit", &out->stream_revisit);
  rd(v, "global_hot_words", &out->global_hot_words);
  rd(v, "allocs_per_kinst", &out->allocs_per_kinst);
  rd(v, "mean_alloc_size", &out->mean_alloc_size);
  rd(v, "live_target", &out->live_target);
  return true;
}

json::Value workload_to_json(const trace::WorkloadConfig& wl) {
  Value v = Value::object();
  v.set("profile", profile_to_json(wl.profile));
  put(v, "seed", wl.seed);
  put(v, "n_insts", wl.n_insts);
  put(v, "warmup_insts", wl.warmup_insts);
  Value attacks = Value::array();
  for (const auto& [kind, count] : wl.attacks) {
    Value a = Value::object();
    a.set("kind", Value::of_str(trace::attack_kind_name(kind)));
    put_u(a, "count", count);
    attacks.push(std::move(a));
  }
  v.set("attacks", std::move(attacks));
  return v;
}

bool workload_from_json(const json::Value& v, trace::WorkloadConfig* out,
                        std::string* err) {
  if (!reject_unknown(v, workload_to_json(*out), "workload", err)) {
    return false;
  }
  if (const Value* p = v.get("profile")) {
    if (!profile_from_json(*p, &out->profile, err)) return false;
  }
  rd(v, "seed", &out->seed);
  rd(v, "n_insts", &out->n_insts);
  rd(v, "warmup_insts", &out->warmup_insts);
  if (const Value* a = v.get("attacks")) {
    if (!a->is_array()) {
      if (err != nullptr) *err = "workload.attacks: expected an array";
      return false;
    }
    out->attacks.clear();
    for (const Value& e : a->arr) {
      const std::optional<trace::AttackKind> kind =
          attack_kind_from_name(e.get_str("kind"));
      if (!kind) {
        if (err != nullptr) {
          *err = "workload.attacks: unknown kind \"" + e.get_str("kind") + "\"";
        }
        return false;
      }
      out->attacks.emplace_back(*kind,
                                static_cast<u32>(e.get_u64("count", 1)));
    }
  }
  return true;
}

// --- SoC -----------------------------------------------------------------

json::Value deployment_to_json(const KernelDeployment& d) {
  Value v = Value::object();
  v.set("kind", Value::of_str(kernels::kernel_name(d.kind)));
  put_u(v, "engines", d.n_engines);
  put_b(v, "ha", d.use_ha);
  v.set("model", Value::of_str(kernels::prog_model_name(d.model)));
  // "policy" present IFF the default policy is overridden — parsing the
  // export reproduces (policy, policy_overridden) exactly, and a
  // hand-written spec cannot produce the inconsistent (set, false) state.
  if (d.policy_overridden) {
    v.set("policy", Value::of_str(core::sched_policy_name(d.policy)));
  }
  return v;
}

bool deployment_from_json(const json::Value& v, KernelDeployment* out,
                          std::string* err) {
  KernelDeployment model_src;
  model_src.policy_overridden = true;  // make "policy" a known key
  if (!reject_unknown(v, deployment_to_json(model_src), "soc.kernels[]",
                      err)) {
    return false;
  }
  const std::string kind = v.get_str("kind");
  if (!kind.empty()) {
    const std::optional<kernels::KernelKind> k = kernel_kind_from_name(kind);
    if (!k) {
      if (err != nullptr) {
        *err = "soc.kernels[]: unknown kind \"" + kind + "\"";
      }
      return false;
    }
    out->kind = *k;
  }
  rd(v, "engines", &out->n_engines);
  rd(v, "ha", &out->use_ha);
  const std::string model = v.get_str("model");
  if (!model.empty()) {
    const std::optional<kernels::ProgModel> m = prog_model_from_name(model);
    if (!m) {
      if (err != nullptr) {
        *err = "soc.kernels[]: unknown model \"" + model + "\"";
      }
      return false;
    }
    out->model = *m;
  }
  const std::string policy = v.get_str("policy");
  if (!policy.empty()) {
    const std::optional<core::SchedPolicy> p = sched_policy_from_name(policy);
    if (!p) {
      if (err != nullptr) {
        *err = "soc.kernels[]: unknown policy \"" + policy + "\"";
      }
      return false;
    }
    // Explicit policy assignment always sets the override flag with it.
    out->policy = *p;
    out->policy_overridden = true;
  }
  return true;
}

json::Value soc_to_json(const SocConfig& sc) {
  Value v = Value::object();
  v.set("core", core_to_json(sc.core));
  v.set("mem", mem_to_json(sc.mem));
  v.set("frontend", frontend_to_json(sc.frontend));
  v.set("ucore", ucore_to_json(sc.ucore));
  v.set("kparams", kparams_to_json(sc.kparams));
  Value kernels_v = Value::array();
  for (const KernelDeployment& d : sc.kernels) {
    kernels_v.push(deployment_to_json(d));
  }
  v.set("kernels", std::move(kernels_v));
  v.set("engine_l2", cache_to_json(sc.engine_l2));
  put_u(v, "noc_hop_latency", sc.noc_hop_latency);
  put(v, "max_fast_cycles", sc.max_fast_cycles);
  put_d(v, "fast_ghz", sc.fast_ghz);
  put(v, "warmup_insts", sc.warmup_insts);
  return v;
}

bool soc_from_json(const json::Value& v, SocConfig* out, std::string* err) {
  if (!reject_unknown(v, soc_to_json(*out), "soc", err)) return false;
  if (const Value* c = v.get("core")) {
    if (!core_from_json(*c, &out->core, err)) return false;
  }
  if (const Value* m = v.get("mem")) {
    if (!mem_from_json(*m, &out->mem, err)) return false;
  }
  if (const Value* f = v.get("frontend")) {
    if (!frontend_from_json(*f, &out->frontend, err)) return false;
  }
  if (const Value* u = v.get("ucore")) {
    if (!ucore_from_json(*u, &out->ucore, err)) return false;
  }
  if (const Value* k = v.get("kparams")) {
    if (!kparams_from_json(*k, &out->kparams, err)) return false;
  }
  if (const Value* ks = v.get("kernels")) {
    if (!ks->is_array()) {
      if (err != nullptr) *err = "soc.kernels: expected an array";
      return false;
    }
    out->kernels.clear();
    for (const Value& e : ks->arr) {
      KernelDeployment d;
      if (!deployment_from_json(e, &d, err)) return false;
      out->kernels.push_back(d);
    }
  }
  if (const Value* e = v.get("engine_l2")) {
    if (!cache_from_json(*e, &out->engine_l2, "soc.engine_l2", err)) {
      return false;
    }
  }
  rd(v, "noc_hop_latency", &out->noc_hop_latency);
  rd(v, "max_fast_cycles", &out->max_fast_cycles);
  rd(v, "fast_ghz", &out->fast_ghz);
  rd(v, "warmup_insts", &out->warmup_insts);
  return true;
}

std::string baseline_subspec_json(const trace::WorkloadConfig& wl,
                                  const SocConfig& sc) {
  // Everything run_baseline_cycles reads, and nothing it does not: the
  // trace stream (attacks inject real instructions) and the full core +
  // memory configuration. Frontend/engine/kernel knobs are deliberately
  // absent so FireGuard-side sweeps share one baseline per (workload, core,
  // mem) point.
  Value v = Value::object();
  v.set("schema", Value::of_str("fireguard/baseline_key/v1"));
  v.set("workload", workload_to_json(wl));
  v.set("core", core_to_json(sc.core));
  v.set("mem", mem_to_json(sc.mem));
  put(v, "max_fast_cycles", sc.max_fast_cycles);
  return json::dump(v);
}

}  // namespace fg::soc
