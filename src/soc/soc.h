// Full-system composition: BOOM main core + FireGuard frontend (fast clock
// domain) and fabric + analysis engines (slow clock domain), per Table II.
//
// The simulation advances one fast cycle at a time; every `freq_ratio` fast
// cycles the slow domain ticks once (multicast delivery from the CDC, µcore
// execution, output-queue drain into the mesh NoC, NoC deliveries). All
// back-pressure is physical: a full structure anywhere in the chain
// eventually refuses commit lanes and stalls the main core.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/boom/core.h"
#include "src/core/fabric.h"
#include "src/core/frontend.h"
#include "src/kernels/ha.h"
#include "src/kernels/kernel.h"
#include "src/mem/hierarchy.h"
#include "src/trace/workload.h"
#include "src/ucore/ucore.h"

namespace fg::soc {

struct KernelDeployment {
  kernels::KernelKind kind = kernels::KernelKind::kPmc;
  u32 n_engines = 4;                                  // µcores for this kernel
  bool use_ha = false;                                // one HA instead
  kernels::ProgModel model = kernels::ProgModel::kHybrid;
  /// Scheduling policy; defaults to block mode for the shadow stack (message
  /// locality) and round-robin for everything else.
  core::SchedPolicy policy = core::SchedPolicy::kRoundRobin;
  bool policy_overridden = false;
};

struct SocConfig {
  boom::CoreConfig core{};
  mem::HierarchyConfig mem{};
  core::FrontendConfig frontend{};
  ucore::UCoreConfig ucore{};
  kernels::KernelParams kparams{};
  std::vector<KernelDeployment> kernels;
  /// Shared L2 behind the analysis engines' private caches (timing only).
  mem::CacheConfig engine_l2{512 * 1024, 8, 64, 4, 12};
  u32 noc_hop_latency = 2;
  u64 max_fast_cycles = 400'000'000;
  double fast_ghz = 3.2;  // Table II main-core clock (latency conversion)

  /// Measurement starts after this many committed instructions (predictor /
  /// cache warmup; the slowdown is computed on the post-warmup window).
  u64 warmup_insts = 0;
  /// Regions functionally pre-warmed into L2/LLC (and their shadow into the
  /// engines' shared L2) before the run.
  std::vector<std::pair<u64, u64>> warm_regions;
};

struct DetectionRecord {
  u32 attack_id = 0;
  u32 engine = 0;
  Cycle commit_fast = 0;
  Cycle detect_fast = 0;
  double latency_ns = 0.0;
};

class Soc final : public boom::CommitSink, public core::QueueStatus {
 public:
  Soc(const SocConfig& cfg, trace::TraceSource& src);

  /// Run to completion (trace exhausted, pipelines and queues drained).
  void run();

  // --- boom::CommitSink (delegates to the FireGuard frontend) ---
  bool can_commit(u32 lane, const trace::TraceInst& ti) override;
  void on_commit(u32 lane, const trace::TraceInst& ti, Cycle now) override;
  u32 prf_ports_preempted() override;

  // --- core::QueueStatus (engine message-queue occupancy) ---
  bool engine_queue_full(u32 engine) const override;
  size_t engine_queue_free(u32 engine) const override;

  /// Main-core cycles to finish the post-warmup window (slowdown numerator).
  Cycle core_cycles() const {
    const Cycle w = core_->warmup_cycle();
    return core_done_cycle_ > w ? core_done_cycle_ - w : core_done_cycle_;
  }
  Cycle total_core_cycles() const { return core_done_cycle_; }
  u64 committed() const { return core_->stats().committed; }

  /// All kernel detections matched to injected attacks, with latencies.
  /// Matched and spurious counts come from one shared match pass (computed
  /// lazily, cached until the simulation advances).
  std::vector<DetectionRecord> detections() const;
  u64 spurious_detections() const;

  /// Fraction of all fast cycles each StallCause blocked commit (Figure 9).
  std::array<double, 5> stall_fractions() const;

  const boom::BoomCore& core() const { return *core_; }
  const core::Frontend& frontend() const { return *frontend_; }
  const core::NocMesh& noc() const { return *noc_; }
  size_t n_engines() const { return engines_.size(); }
  const ucore::UCore* engine_ucore(u32 i) const { return engines_[i].ucore.get(); }
  const kernels::HardwareAccelerator* engine_ha(u32 i) const {
    return engines_[i].ha.get();
  }
  u64 total_packets_processed() const;

 private:
  struct Engine {
    std::unique_ptr<ucore::UCore> ucore;
    std::unique_ptr<kernels::HardwareAccelerator> ha;
    u32 deployment = 0;

    bool input_full() const;
    size_t input_free() const;
    void push_input(const core::Packet& p);
    void tick(Cycle now_slow);
    bool quiescent() const;
    /// No observable progress possible (see UCore::idle); safe to skip tick.
    bool idle() const;
    const std::vector<ucore::Detection>& detections() const;
  };

  void build_engines(trace::TraceSource& src);
  void apply_heap_event(const trace::TraceInst& ti);
  void slow_tick(Cycle now_slow);
  bool can_deliver(const core::Packet& p) const;
  void deliver(const core::Packet& p);
  bool engines_drained() const;
  void match_detections() const;  // fills matched_/spurious_ in one pass

  SocConfig cfg_;
  mem::MemHierarchy mem_;
  std::unique_ptr<boom::BoomCore> core_;
  std::unique_ptr<core::Frontend> frontend_;
  std::vector<Engine> engines_;
  // Raw per-engine µcore pointers (nullptr for HA slots), hoisted out of the
  // slow-tick drain/NoC loops so they don't re-do unique_ptr::get() per
  // engine per slow cycle.
  std::vector<ucore::UCore*> ucores_;
  std::vector<std::unique_ptr<ucore::USharedMemory>> kernel_mems_;
  // Shared memories that hold an authoritative ASan/UaF shadow, updated in
  // commit order (functional-first / timing-later split, DESIGN.md §6).
  std::vector<ucore::USharedMemory*> shadow_mems_;
  std::unique_ptr<mem::Cache> engine_l2_;
  std::unique_ptr<core::NocMesh> noc_;

  bool engines_blocked_ = false;  // multicast head-of-line blocked last slow tick
  Cycle fast_now_ = 0;
  Cycle core_done_cycle_ = 0;
  std::unordered_map<u32, Cycle> attack_commit_;
  // Kernels whose hot loop cannot afford q.recent report the faulting
  // address instead of the debug-data word; map addresses back to ids.
  std::unordered_map<u64, std::vector<u32>> attack_by_addr_;

  // Cache for the match pass shared by detections() / spurious_detections();
  // keyed on the fast cycle it was computed at so mid-run queries stay fresh.
  mutable bool match_valid_ = false;
  mutable Cycle match_cycle_ = 0;
  mutable std::vector<DetectionRecord> matched_;
  mutable u64 spurious_ = 0;
};

}  // namespace fg::soc
