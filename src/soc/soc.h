// Full-system composition: BOOM main core + FireGuard frontend (fast clock
// domain) and fabric + analysis engines (slow clock domain), per Table II.
//
// The reference model advances one fast cycle at a time; every `freq_ratio`
// fast cycles the slow domain ticks once (multicast delivery from the CDC,
// µcore execution, output-queue drain into the mesh NoC, NoC deliveries).
// All back-pressure is physical: a full structure anywhere in the chain
// eventually refuses commit lanes and stalls the main core.
//
// By default `run()` drives that model with an event-driven scheduler: each
// component exposes a next-event horizon (BOOM fixed point, CDC handshake
// settle, µcore stall end, NoC arrival), and whenever the whole SoC is
// provably dead until the minimum horizon, the loop advances both clock
// domains to it in one step — bit-identical to stepping, because only
// cycles in which nothing can change are skipped and their per-cycle stall
// accounting is charged in bulk. FG_CYCLE_EXACT=1 forces the stepped
// reference loop (the differential suite compares the two).
//
// FG_PIPELINE=1 runs the same model on two threads: the fast domain (core +
// frontend) and the slow domain (engines + NoC) execute concurrently,
// exchanging CDC traffic only at epoch boundaries sized by the horizon
// contract, bit-identical to both serial paths (see run_pipelined below and
// docs/ARCHITECTURE.md). FG_CYCLE_EXACT takes precedence.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/boom/core.h"
#include "src/common/epoch_channel.h"
#include "src/core/fabric.h"
#include "src/core/frontend.h"
#include "src/kernels/ha.h"
#include "src/kernels/kernel.h"
#include "src/mem/hierarchy.h"
#include "src/trace/workload.h"
#include "src/ucore/ucore.h"

namespace fg::soc {

struct KernelDeployment {
  kernels::KernelKind kind = kernels::KernelKind::kPmc;
  u32 n_engines = 4;                                  // µcores for this kernel
  bool use_ha = false;                                // one HA instead
  kernels::ProgModel model = kernels::ProgModel::kHybrid;
  /// Scheduling policy; defaults to block mode for the shadow stack (message
  /// locality) and round-robin for everything else.
  core::SchedPolicy policy = core::SchedPolicy::kRoundRobin;
  bool policy_overridden = false;
};

struct SocConfig {
  boom::CoreConfig core{};
  mem::HierarchyConfig mem{};
  core::FrontendConfig frontend{};
  ucore::UCoreConfig ucore{};
  kernels::KernelParams kparams{};
  std::vector<KernelDeployment> kernels;
  /// Shared L2 behind the analysis engines' private caches (timing only).
  mem::CacheConfig engine_l2{512 * 1024, 8, 64, 4, 12};
  u32 noc_hop_latency = 2;
  u64 max_fast_cycles = 400'000'000;
  double fast_ghz = 3.2;  // Table II main-core clock (latency conversion)

  /// Measurement starts after this many committed instructions (predictor /
  /// cache warmup; the slowdown is computed on the post-warmup window).
  u64 warmup_insts = 0;
  /// Regions functionally pre-warmed into L2/LLC (and their shadow into the
  /// engines' shared L2) before the run.
  std::vector<std::pair<u64, u64>> warm_regions;
};

struct DetectionRecord {
  u32 attack_id = 0;
  u32 engine = 0;
  Cycle commit_fast = 0;
  Cycle detect_fast = 0;
  double latency_ns = 0.0;
};

/// Cycle-accounting for the event-driven scheduler: where simulated time
/// went (stepped vs. bulk-skipped), how long the skips were, and which
/// domain's horizon bounded them. Diagnostic only — never part of the
/// bit-identity comparison (the exact loop steps every cycle by design).
struct SchedStats {
  u64 cycles_stepped = 0;
  u64 cycles_skipped = 0;
  u64 skips = 0;  // bulk-skip events
  /// Skip lengths, log2-bucketed: [1], [2,3], [4,7], ... [2048,inf).
  std::array<u64, 12> skip_len_hist{};
  u64 slow_ticks_run = 0;
  u64 slow_ticks_skipped = 0;
  /// Drain windows: core-horizon jumps that ran interior slow-domain
  /// boundaries (real ticks and/or elided stretches) inside the window.
  u64 drain_windows = 0;
  /// Which horizon bounded each skip (core fixed point, slow-domain event,
  /// or an end-of-run cap: max cycles / grace / drain backstop).
  u64 bound_core = 0;
  u64 bound_slow = 0;
  u64 bound_cap = 0;

  // Epoch-pipelined scheduler (FG_PIPELINE=1) barrier accounting; all zero
  // in serial runs. Boundaries partition into prereleased (overlapped with
  // their epoch's fast cycles), synced (waited for at the barrier), and
  // elided (slow_ticks_skipped counts those). Spin counters measure how long
  // each side waited at barriers — high fast-side spins mean the slow domain
  // is the bottleneck, and vice versa.
  u64 pipe_epochs = 0;
  u64 pipe_prereleased = 0;
  u64 pipe_synced = 0;
  u64 pipe_fast_spins = 0;
  u64 pipe_slow_spins = 0;

  double skipped_fraction() const {
    const u64 total = cycles_stepped + cycles_skipped;
    return total ? static_cast<double>(cycles_skipped) / static_cast<double>(total)
                 : 0.0;
  }
};

class Soc final : public boom::CommitSink, public core::QueueStatus {
 public:
  Soc(const SocConfig& cfg, trace::TraceSource& src);

  /// Run to completion (trace exhausted, pipelines and queues drained).
  void run();

  // --- boom::CommitSink (delegates to the FireGuard frontend; the one-line
  // delegations are inline: they run every cycle / every commit lane) ---
  bool can_commit(u32 lane, const trace::TraceInst& ti) override {
    return frontend_->can_commit(lane, ti);
  }
  void on_commit(u32 lane, const trace::TraceInst& ti, Cycle now) override;
  u32 prf_ports_preempted() override {
    return frontend_->prf_ports_preempted();
  }

  // --- core::QueueStatus (engine message-queue occupancy) ---
  bool engine_queue_full(u32 engine) const override;
  size_t engine_queue_free(u32 engine) const override;

  /// Main-core cycles to finish the post-warmup window (slowdown numerator).
  Cycle core_cycles() const {
    const Cycle w = core_->warmup_cycle();
    return core_done_cycle_ > w ? core_done_cycle_ - w : core_done_cycle_;
  }
  Cycle total_core_cycles() const { return core_done_cycle_; }
  u64 committed() const { return core_->stats().committed; }

  /// All kernel detections matched to injected attacks, with latencies.
  /// Matched and spurious counts come from one shared match pass (computed
  /// lazily, cached until the simulation advances).
  std::vector<DetectionRecord> detections() const;
  u64 spurious_detections() const;

  /// Fraction of all fast cycles each StallCause blocked commit (Figure 9).
  std::array<double, 5> stall_fractions() const;

  const SchedStats& sched_stats() const { return sched_; }

  const boom::BoomCore& core() const { return *core_; }
  const core::Frontend& frontend() const { return *frontend_; }
  const core::NocMesh& noc() const { return *noc_; }
  size_t n_engines() const { return engines_.size(); }
  const ucore::UCore* engine_ucore(u32 i) const { return engines_[i].ucore.get(); }
  const kernels::HardwareAccelerator* engine_ha(u32 i) const {
    return engines_[i].ha.get();
  }
  u64 total_packets_processed() const;

 private:
  struct Engine {
    std::unique_ptr<ucore::UCore> ucore;
    std::unique_ptr<kernels::HardwareAccelerator> ha;
    u32 deployment = 0;

    bool input_full() const;
    size_t input_free() const;
    void push_input(const core::Packet& p);
    void tick(Cycle now_slow);
    bool quiescent() const;
    /// No observable progress possible (see UCore::idle); safe to skip tick.
    bool idle() const;
    /// First slow cycle >= `now_slow` at which this engine (or the fabric
    /// draining its output queue) can change state; kNoEvent if never.
    Cycle next_event(Cycle now_slow) const;
    const std::vector<ucore::Detection>& detections() const;
  };

  // --- epoch-pipelined scheduler (FG_PIPELINE=1) ---------------------------
  // The slow domain's entire fast-visible surface, frozen at a boundary. The
  // fast thread runs each epoch against the previous boundary's view; the
  // slow thread rebuilds it after every real slow tick. Exact, not
  // approximate: slow state mutates only inside slow_tick, which runs only
  // at boundaries, so between boundaries the live values ARE these.
  struct SlowView {
    bool engines_blocked = false;
    bool drained = true;
    /// Engines + mesh rest horizon (absolute slow cycle or kNoEvent),
    /// computed one past the boundary; consumers max-clamp to "now" exactly
    /// like the serial memo.
    Cycle rest_horizon = kNoEvent;
    std::array<u8, core::kMaxEngines> queue_full{};
    std::array<u32, core::kMaxEngines> queue_free{};
  };
  /// One barrier command from the fast to the slow thread: charge `elide`
  /// skipped boundaries (pure stall accounting, proven no-ops), then run
  /// one real slow tick if `run`, then rebuild the view and acknowledge.
  struct SlowCmd {
    u64 elide = 0;
    u8 run = 0;
    u8 last = 0;
  };

  /// Two-thread run loop, bit-identical to the serial paths.
  void run_pipelined();
  /// Slow-domain thread body: serve SlowCmds until one is marked last.
  void slow_worker(EpochChannel<SlowCmd, SlowView>& ch, Cycle slow_now);
  /// Rebuild the fast-visible view after the boundary that left the slow
  /// clock at `now_slow` (slow thread, or pre-spawn fast thread).
  SlowView make_slow_view(Cycle now_slow);

  void build_engines(trace::TraceSource& src);
  void apply_heap_event(const trace::TraceInst& ti);
  void slow_tick(Cycle now_slow);
  /// Earliest slow cycle >= `now_slow` at which slow_tick would not be a
  /// structural no-op (CDC handshake settles, a µcore wakes or can execute,
  /// an output queue owes the fabric a drain, a mesh message arrives).
  Cycle slow_next_event(Cycle now_slow) const;
  /// The engines-plus-mesh share of slow_next_event, unmemoized.
  Cycle slow_rest_horizon_fresh(Cycle now_slow) const;
  /// Memoized wrapper: engine and mesh state mutate only inside slow_tick,
  /// so the joint horizon is cached under the slow-tick epoch counter.
  Cycle slow_rest_horizon(Cycle now_slow) const;
  bool can_deliver(const core::Packet& p) const;
  void deliver(const core::Packet& p);
  bool engines_drained() const;
  void match_detections() const;  // fills matched_/spurious_ in one pass

  SocConfig cfg_;
  mem::MemHierarchy mem_;
  std::unique_ptr<boom::BoomCore> core_;
  std::unique_ptr<core::Frontend> frontend_;
  std::vector<Engine> engines_;
  // Raw per-engine µcore pointers (nullptr for HA slots), hoisted out of the
  // slow-tick drain/NoC loops so they don't re-do unique_ptr::get() per
  // engine per slow cycle.
  std::vector<ucore::UCore*> ucores_;
  std::vector<std::unique_ptr<ucore::USharedMemory>> kernel_mems_;
  // Shared memories that hold an authoritative ASan/UaF shadow, updated in
  // commit order (functional-first / timing-later split, DESIGN.md §6).
  std::vector<ucore::USharedMemory*> shadow_mems_;
  std::unique_ptr<mem::Cache> engine_l2_;
  std::unique_ptr<core::NocMesh> noc_;

  bool engines_blocked_ = false;  // multicast head-of-line blocked last slow tick
  // Non-null while run_pipelined is active: the QueueStatus overrides answer
  // from this boundary view instead of the (slow-thread-owned) live engines.
  const SlowView* pipe_view_ = nullptr;
  Cycle fast_now_ = 0;
  Cycle core_done_cycle_ = 0;
  std::unordered_map<u32, Cycle> attack_commit_;
  // Kernels whose hot loop cannot afford q.recent report the faulting
  // address instead of the debug-data word; map addresses back to ids.
  std::unordered_map<u64, std::vector<u32>> attack_by_addr_;

  // Cache for the match pass shared by detections() / spurious_detections();
  // keyed on the fast cycle it was computed at so mid-run queries stay fresh.
  mutable bool match_valid_ = false;
  mutable Cycle match_cycle_ = 0;
  mutable std::vector<DetectionRecord> matched_;
  mutable u64 spurious_ = 0;

  SchedStats sched_;

  // Memoized slow-domain horizon, split by who can invalidate it. Engine and
  // mesh state mutate only inside slow_tick, so their joint horizon (an
  // absolute slow cycle, or kNoEvent) is cached under a slow-tick epoch
  // counter — nothing the fast domain does can stale it. CDC head-readiness
  // is the one input the fast domain *can* move (a push), so it is read
  // fresh on every evaluation; it is O(1) by handshake monotonicity. The
  // net effect is the per-engine horizon memoization the delivery path
  // invalidates only when a slow tick actually runs.
  u64 slow_epoch_ = 0;
  mutable u64 slow_rest_epoch_ = ~u64{0};
  mutable Cycle slow_rest_cache_ = 0;

  // CDC slow-side read bandwidth per slow tick (freq_ratio packets per
  // mapper lane), hoisted out of the per-tick pop loop.
  u32 cdc_pop_budget_ = 1;
};

}  // namespace fg::soc
