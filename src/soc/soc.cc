#include "src/soc/soc.h"

#include <algorithm>
#include <bit>
#include <thread>

#include "src/common/check.h"
#include "src/common/invariant.h"
#include "src/common/simctl.h"

namespace fg::soc {

namespace {
/// Quiescent post-completion iterations before run() exits (NoC tokens and
/// pipeline residue settle well inside this).
constexpr u64 kGraceLimit = 512;
/// Post-completion drain backstop: a misconfigured kernel (e.g. a shadow
/// stack scheduled without block mode) can leave queues that never empty.
constexpr Cycle kDrainBackstop = 2'000'000;
}  // namespace

bool Soc::Engine::input_full() const {
  return ucore ? ucore->input_full() : ha->input_full();
}
size_t Soc::Engine::input_free() const {
  return ucore ? ucore->input_free() : ha->input_free();
}
void Soc::Engine::push_input(const core::Packet& p) {
  if (ucore) {
    ucore->push_input(p);
  } else {
    ha->push_input(p);
  }
}
void Soc::Engine::tick(Cycle now_slow) {
  if (ucore) {
    ucore->tick(now_slow);
  } else {
    ha->tick(now_slow);
  }
}
bool Soc::Engine::quiescent() const {
  return ucore ? ucore->quiescent() : ha->quiescent();
}
bool Soc::Engine::idle() const {
  return ucore ? ucore->idle() : ha->idle();
}
Cycle Soc::Engine::next_event(Cycle now_slow) const {
  if (ucore) {
    // A pending output word is drained by the fabric every slow tick even
    // while the core itself is stalled or halted.
    if (!ucore->output_empty()) return now_slow;
    return ucore->next_event(now_slow);
  }
  return ha->next_event(now_slow);
}
const std::vector<ucore::Detection>& Soc::Engine::detections() const {
  return ucore ? ucore->detections() : ha->detections();
}

Soc::Soc(const SocConfig& cfg, trace::TraceSource& src)
    : cfg_(cfg), mem_(cfg.mem) {
  core_ = std::make_unique<boom::BoomCore>(cfg_.core, mem_, src);
  core_->set_warmup_mark(cfg_.warmup_insts);
  frontend_ = std::make_unique<core::Frontend>(cfg_.frontend);
  engine_l2_ = std::make_unique<mem::Cache>(cfg_.engine_l2, "engineL2");
  for (const auto& [lo, hi] : cfg_.warm_regions) {
    mem_.warm_region(lo, hi);
    // The analysis engines' hot state is the shadow of the program's data.
    const u64 slo = cfg_.kparams.shadow_base + (lo >> 3);
    const u64 shi = cfg_.kparams.shadow_base + (hi >> 3) + 64;
    for (u64 a = slo & ~u64{63}; a < shi; a += 64) engine_l2_->warm_line(a);
  }
  mem_.reset_stats();
  engine_l2_->reset_stats();
  build_engines(src);
  cdc_pop_budget_ = cfg_.frontend.freq_ratio * cfg_.frontend.mapper_width;
}

void Soc::build_engines(trace::TraceSource&) {
  u32 next_engine = 0;
  u32 next_se = 0;
  u8 next_gid = 0;
  for (u32 d = 0; d < cfg_.kernels.size(); ++d) {
    KernelDeployment& dep = cfg_.kernels[d];
    if (!dep.policy_overridden) {
      dep.policy = dep.kind == kernels::KernelKind::kShadowStack
                       ? core::SchedPolicy::kBlock
                       : core::SchedPolicy::kRoundRobin;
    }
    const bool split = kernels::kernel_splits_events(dep.kind) && !dep.use_ha;
    const u8 gid_checks = next_gid++;
    const u8 gid_events = split ? next_gid++ : gid_checks;
    kernels::program_filter(frontend_->filter().table(), dep.kind, gid_checks,
                            gid_events);

    const u32 n = dep.use_ha ? 1 : dep.n_engines;
    FG_CHECK(n >= 1);
    FG_CHECK(next_engine + n <= core::kMaxEngines);
    u16 ae_mask = 0;
    kernel_mems_.push_back(std::make_unique<ucore::USharedMemory>());
    ucore::USharedMemory* kmem = kernel_mems_.back().get();

    for (u32 i = 0; i < n; ++i) {
      const u32 id = next_engine + i;
      ae_mask |= static_cast<u16>(1u << id);
      Engine e;
      e.deployment = d;
      if (dep.use_ha) {
        switch (dep.kind) {
          case kernels::KernelKind::kPmc:
            e.ha = std::make_unique<kernels::PmcHa>(id, cfg_.kparams.text_lo,
                                                    cfg_.kparams.text_hi);
            break;
          case kernels::KernelKind::kShadowStack:
            e.ha = std::make_unique<kernels::ShadowStackHa>(id);
            break;
          default:
            FG_CHECK(false && "HA available only for PMC and shadow stack");
        }
      } else {
        e.ucore = std::make_unique<ucore::UCore>(cfg_.ucore, id, kmem,
                                                 engine_l2_.get());
        e.ucore->load_program(kernels::build_kernel_program(
            dep.kind, dep.model, cfg_.kparams, i, n));
      }
      engines_.push_back(std::move(e));
      ucores_.push_back(engines_.back().ucore.get());
    }
    // Checks: all engines of the group under the deployment's policy.
    if (split) shadow_mems_.push_back(kmem);
    frontend_->allocator().configure_se(next_se++, ae_mask, dep.policy,
                                        gid_checks);
    if (split) {
      // Allocator events: pinned to the group's first engine.
      frontend_->allocator().configure_se(
          next_se++, static_cast<u16>(1u << next_engine),
          core::SchedPolicy::kFixed, gid_events);
    }
    next_engine += n;
  }
  noc_ = std::make_unique<core::NocMesh>(std::max<u32>(1, next_engine),
                                         cfg_.noc_hop_latency);
}

void Soc::apply_heap_event(const trace::TraceInst& ti) {
  // Authoritative shadow maintenance in commit order. The event engine's
  // µcore program performs the identical loops against the timing mirror,
  // so the *cost* is still paid in the analysis backend; doing the
  // functional update here removes the engine-lag races that would
  // otherwise make check verdicts depend on cross-engine process skew.
  const u64 shadow_lo = ti.sem_addr >> 3;
  const u64 shadow_len = ti.sem_size >> 3;
  for (ucore::USharedMemory* m : shadow_mems_) {
    const u64 base = cfg_.kparams.shadow_base;
    if (ti.sem == trace::SemEvent::kAlloc) {
      for (u64 i = 0; i < shadow_len; i += 8) m->store(base + shadow_lo + i, 8, 0);
      // Trailing 64-byte redzone = one poisoned shadow word.
      m->store(base + shadow_lo + shadow_len, 8, 0xfafafafafafafafaull);
    } else {
      for (u64 i = 0; i < shadow_len; i += 8) {
        m->store(base + shadow_lo + i, 8, 0xfdfdfdfdfdfdfdfdull);
      }
    }
  }
}

void Soc::on_commit(u32 lane, const trace::TraceInst& ti, Cycle now) {
  if (ti.attack_id != 0) {
    attack_commit_.emplace(ti.attack_id, now);
    const u64 addr = isa::is_mem(ti.cls) ? ti.mem_addr : ti.target;
    attack_by_addr_[addr].push_back(ti.attack_id);
  }
  if (ti.sem != trace::SemEvent::kNone) apply_heap_event(ti);
  frontend_->on_commit(lane, ti, now);
}

bool Soc::engine_queue_full(u32 engine) const {
  FG_CHECK(engine < engines_.size());
  // Pipelined: answer from the boundary view — the live engines belong to
  // the slow thread, and between boundaries the view IS the live value
  // (occupancy only changes inside slow_tick).
  if (pipe_view_ != nullptr) return pipe_view_->queue_full[engine] != 0;
  return engines_[engine].input_full();
}

size_t Soc::engine_queue_free(u32 engine) const {
  FG_CHECK(engine < engines_.size());
  if (pipe_view_ != nullptr) return pipe_view_->queue_free[engine];
  return engines_[engine].input_free();
}

bool Soc::can_deliver(const core::Packet& p) const {
  for (u32 e = 0; e < engines_.size(); ++e) {
    if ((p.ae_bitmap & (1u << e)) && engines_[e].input_full()) return false;
  }
  if (p.marker_from != 0xff && p.marker_from < engines_.size() &&
      engines_[p.marker_from].input_full()) {
    return false;
  }
  return true;
}

void Soc::deliver(const core::Packet& p) {
  // The handoff marker is delivered first so the old engine's queue carries
  // it in stream order (it precedes every packet routed to the new target).
  if (p.marker_from != 0xff && p.marker_from < engines_.size()) {
    core::Packet marker;
    marker.valid = true;
    marker.gid_bitmap = p.gid_bitmap;
    marker.inst = kernels::kSsMarkerInst;
    marker.addr = p.marker_to;
    marker.seq = p.seq;
    marker.commit_cycle = p.commit_cycle;
    engines_[p.marker_from].push_input(marker);
  }
  for (u32 e = 0; e < engines_.size(); ++e) {
    if (p.ae_bitmap & (1u << e)) engines_[e].push_input(p);
  }
}

void Soc::slow_tick(Cycle now_slow) {
  // Any slow tick may move engine / mesh state: retire the memoized rest
  // horizon (recomputed lazily at the next skip evaluation).
  ++slow_epoch_;
  core::CdcFifo& cdc = frontend_->cdc();
  const u32 n = static_cast<u32>(engines_.size());

  // Fast path: with no poppable CDC entry, no NoC message in flight and
  // every engine idle (spin loop on empty queues, nothing buffered
  // anywhere), the slow domain can make no observable progress this cycle —
  // only the engines' spin loops would advance (see UCore::idle for what
  // freezing them changes). This is the common state whenever the main core
  // runs ahead of the event stream, and it is what lets light kernels
  // simulate at near-baseline speed. The gate is can_pop (not empty): an
  // unsettled head is untouchable this cycle anyway, and in pipelined mode
  // occupancy is the one CDC fact this (slow-thread) path must not read —
  // can_pop sees only boundary-published entries.
  if (!cdc.can_pop(now_slow) && noc_->pending() == 0) {
    bool all_idle = true;
    for (const Engine& e : engines_) {
      if (!e.idle()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) {
      engines_blocked_ = false;
      return;
    }
  }

  // 1) Multicast channel: the CDC's slow-domain read port is freq_ratio
  //    packets wide per mapper lane, so the crossing sustains the mapper's
  //    issue bandwidth end to end. Each packet is delivered atomically to
  //    every interested engine. The handshake is checked once for the whole
  //    burst (settle times are monotone in push order), so one slow-domain
  //    wakeup drains every packet that settled while the domain slept.
  engines_blocked_ = false;
  for (u32 i = cdc.ready_count(now_slow, cdc_pop_budget_); i != 0; --i) {
    const core::Packet& p = cdc.front();
    if (!can_deliver(p)) {
      engines_blocked_ = true;
      break;
    }
    deliver(p);
    cdc.pop();
  }

  // 2) Analysis engines execute. An idle engine cannot make observable
  //    progress (UCore::idle / HardwareAccelerator::idle), so skipping its
  //    tick only freezes the spin loop's own bookkeeping.
  for (Engine& e : engines_) {
    if (!e.idle()) e.tick(now_slow);
  }

  // 3) Output queues drain into the fabric routing channel (one per engine
  //    per cycle). Payload format: {dst[63:56], value[55:0]}.
  for (u32 i = 0; i < n; ++i) {
    ucore::UCore* uc = ucores_[i];
    if (uc == nullptr || uc->output_empty()) continue;
    const u64 payload = uc->pop_output();
    const u32 dst = static_cast<u32>(payload >> 56);
    const u64 value = payload & ((u64{1} << 56) - 1);
    if (dst < n) noc_->send(i, dst, value, now_slow);
  }

  // 4) Mesh deliveries.
  if (noc_->pending() != 0) {
    for (u32 i = 0; i < n; ++i) {
      ucore::UCore* uc = ucores_[i];
      if (uc == nullptr) continue;
      while (auto m = noc_->deliver(i, now_slow)) uc->push_noc(m->payload);
    }
  }
}

bool Soc::engines_drained() const {
  for (const Engine& e : engines_) {
    if (!e.quiescent()) return false;
    if (e.ucore && !e.ucore->output_empty()) return false;
  }
  return true;
}

Cycle Soc::slow_rest_horizon_fresh(Cycle now_slow) const {
  Cycle h = kNoEvent;
  // Mesh: the earliest in-flight arrival.
  if (noc_->pending() != 0) {
    const Cycle arrival = noc_->next_arrival();
    if (arrival != kNoEvent) h = std::min(h, arrival);
  }
  // Engines: wake-from-stall / executable-now / output-drain horizons.
  for (const Engine& e : engines_) {
    if (h <= now_slow) break;  // cannot get earlier once clamped to now
    const Cycle ee = e.next_event(now_slow);
    if (ee != kNoEvent) h = std::min(h, ee);
  }
  return h;
}

Cycle Soc::slow_rest_horizon(Cycle now_slow) const {
  if (slow_rest_epoch_ != slow_epoch_) {
    slow_rest_cache_ = slow_rest_horizon_fresh(now_slow);
    slow_rest_epoch_ = slow_epoch_;
  }
  const Cycle h = slow_rest_cache_;
#if FG_INVARIANTS_COMPILED
  // The epoch-keyed memo must never go stale: engine / mesh state mutating
  // anywhere but slow_tick would make the skip paths jump over a live event.
  // (Clamped comparison: a cache computed at an earlier `now_slow` may hold
  // that older cycle for an executable-now engine; both sides mean "now".)
  const Cycle fresh = slow_rest_horizon_fresh(now_slow);
  FG_INVARIANT(
      (h == kNoEvent ? kNoEvent : std::max(h, now_slow)) ==
          (fresh == kNoEvent ? kNoEvent : std::max(fresh, now_slow)),
      "soc.slow_horizon_epoch");
#endif
  return h == kNoEvent ? kNoEvent : std::max(h, now_slow);
}

Cycle Soc::slow_next_event(Cycle now_slow) const {
  Cycle h = slow_rest_horizon(now_slow);
  // CDC: the head entry's handshake settles at a known slow cycle; pops are
  // in order, so it bounds the whole FIFO. (Delivery may then still block on
  // a full message queue — but a full queue means a non-idle engine, whose
  // own horizon already forces stepping.) Read fresh: a fast-domain push is
  // the one event the slow-tick epoch cannot see, and it is O(1) here.
  const Cycle cdc_ready = frontend_->cdc().next_ready_slow();
  if (cdc_ready != kNoEvent) h = std::min(h, std::max(cdc_ready, now_slow));
  return h;
}

void Soc::run() {
  // FG_CYCLE_EXACT wins over FG_PIPELINE: the stepped reference loop is the
  // serial baseline every other scheduler is differentially tested against.
  if (pipeline_enabled() && !cycle_exact()) {
    run_pipelined();
    return;
  }
  const u32 ratio = std::max<u32>(1, cfg_.frontend.freq_ratio);
  const bool exact = cycle_exact();
  bool core_done = false;
  u64 grace = 0;
  // Slow-domain schedule without the per-cycle div/mod: tick the slow domain
  // every `ratio`-th fast cycle and count its cycles directly. The next slow
  // tick fires in the iteration whose fast cycle is fast_now_+until_slow-1.
  u32 until_slow = ratio;
  Cycle slow_now = fast_now_ / ratio;
  // Whether the last stepped core cycle changed state (see BoomCore::tick);
  // only a fixed-point core may be fast-forwarded, and only then are its
  // recorded dispatch-block hints valid.
  bool core_active = true;

  while (fast_now_ < cfg_.max_fast_cycles) {
    // --- Event-driven fast-forward over provably dead fast cycles. -------
    // Preconditions: the stepped reference loop is not forced, the core is
    // at a fixed point (or finished), and the fast-domain frontend is empty
    // (a buffered packet makes the arbiter/mapper progress every cycle).
    // The core horizon is O(1); evaluating the slow domain only pays off
    // once the core is known to be dead for more than one cycle.
    const Cycle core_ev = (exact || core_active)      ? 0
                          : core_done                 ? kNoEvent
                                                      : core_->next_event();
    if (core_ev > fast_now_ + 1 && frontend_->filter().buffered() == 0) {
      if (!core_done) {
        // --- Drain window: jump the core to its own horizon. -------------
        // With the core at a fixed point and the filter drained, nothing
        // the slow domain does can reach the fast domain before the core's
        // horizon: commits are the only filter feed, tick_fast is gated on
        // a non-empty filter, and engine back-pressure is only read inside
        // tick_fast. So the fast clock jumps straight to the horizon while
        // the interior slow boundaries run in a tight loop — real ticks
        // where the slow horizon says something happens, bulk elision of
        // the provably dead stretches in between. This is what turns a
        // 190-cycle DRAM miss into one skip instead of ratio-bounded
        // two-cycle hops.
        const Cycle target = std::min<Cycle>(core_ev, cfg_.max_fast_cycles);
        if (target > fast_now_ + 1) {
          const u64 delta = target - fast_now_;
          core_->skip_to(target);
          Cycle boundary = fast_now_ + (until_slow - 1);
          const bool had_boundary = boundary < target;
          while (boundary < target) {
            const Cycle slow_ev = slow_next_event(slow_now);
            if (slow_ev > slow_now) {
              // Every boundary strictly before the slow horizon is a
              // structural no-op; only stalled (non-idle, non-halted)
              // µcores owe their per-tick stall accounting. Engine state is
              // frozen between real slow ticks, so one predicate
              // evaluation covers the whole stretch.
              const u64 remaining = 1 + (target - 1 - boundary) / ratio;
              const u64 nb =
                  slow_ev == kNoEvent
                      ? remaining
                      : std::min<u64>(remaining, slow_ev - slow_now);
              for (ucore::UCore* uc : ucores_) {
                if (uc != nullptr && !uc->idle() && !uc->halted()) {
                  uc->charge_skipped_stall(nb);
                }
              }
              engines_blocked_ = false;
              slow_now += nb;
              boundary += nb * ratio;
              sched_.slow_ticks_skipped += nb;
            } else {
              slow_tick(slow_now++);
              ++sched_.slow_ticks_run;
              boundary += ratio;
            }
          }
          until_slow = static_cast<u32>(boundary - target + 1);
          fast_now_ = target;
          sched_.cycles_skipped += delta;
          ++sched_.skips;
          if (had_boundary) ++sched_.drain_windows;
          ++sched_.skip_len_hist[std::min<u32>(
              static_cast<u32>(sched_.skip_len_hist.size() - 1),
              std::bit_width(delta) - 1)];
          if (target == core_ev) {
            ++sched_.bound_core;
          } else {
            ++sched_.bound_cap;
          }
          continue;  // re-evaluate at the horizon
        }
      } else {
        // --- Post-completion skip: slow-horizon-capped. ------------------
        // After the core finishes, the fast domain exists only to clock the
        // slow domain toward quiescence; the skip target is the next slow
        // event, capped by the grace window and drain backstop, which
        // advance (and break) exactly as if each quiescent cycle had been
        // stepped.
        Cycle target = kNoEvent;
        bool bound_is_slow = false;
        const Cycle slow_ev = slow_next_event(slow_now);
        if (slow_ev != kNoEvent) {
          target = fast_now_ + (until_slow - 1) + (slow_ev - slow_now) * ratio;
          bound_is_slow = true;
        }
        Cycle cap = std::min(cfg_.max_fast_cycles,
                             core_done_cycle_ + kDrainBackstop + 1);
        const bool grace_cond = frontend_->cdc().empty() && engines_drained();
        if (grace_cond) {
          cap = std::min(cap, fast_now_ + (kGraceLimit + 1 - grace));
        }
        if (cap < target) {
          target = cap;
          bound_is_slow = false;
        }
        if (target != kNoEvent && target > fast_now_ + 1) {
          const u64 delta = target - fast_now_;
          // Slow-domain bookkeeping: every slow boundary inside the window
          // is a structural no-op (that is what the horizon proves), but
          // stalled µcores still owe their per-tick stall accounting, and a
          // no-op multicast pass always leaves engines_blocked_ false.
          const Cycle first_boundary = fast_now_ + (until_slow - 1);
          if (first_boundary < target) {
            const u64 k = 1 + (target - 1 - first_boundary) / ratio;
            for (ucore::UCore* uc : ucores_) {
              if (uc != nullptr && !uc->idle() && !uc->halted()) {
                uc->charge_skipped_stall(k);
              }
            }
            slow_now += k;
            engines_blocked_ = false;
            until_slow =
                static_cast<u32>(first_boundary + k * ratio - target + 1);
            sched_.slow_ticks_skipped += k;
          } else {
            until_slow -= static_cast<u32>(delta);
          }
          fast_now_ = target;
          sched_.cycles_skipped += delta;
          ++sched_.skips;
          ++sched_.skip_len_hist[std::min<u32>(
              static_cast<u32>(sched_.skip_len_hist.size() - 1),
              std::bit_width(delta) - 1)];
          if (bound_is_slow) {
            ++sched_.bound_slow;
          } else {
            ++sched_.bound_cap;
          }
          if (grace_cond) {
            grace += delta;
            if (grace > kGraceLimit) break;
          } else {
            grace = 0;
          }
          if (fast_now_ - core_done_cycle_ > kDrainBackstop) break;
          continue;  // re-evaluate at the horizon
        }
      }
    }

    // --- One stepped reference cycle. ------------------------------------
    core_active = false;
    if (!core_done) {
      core_active = core_->tick_t(this);
      if (core_->done()) {
        core_done = true;
        core_done_cycle_ = core_->now();
      }
    }
    // With nothing buffered the fast-domain frontend has nothing to
    // arbitrate, and the stall-attribution hint it would latch cannot be
    // read before the next tick_fast (a refusal needs a FIFO that was
    // already non-empty last cycle).
    if (frontend_->filter().buffered() != 0) {
      frontend_->tick_fast(fast_now_, *this, engines_blocked_);
    }
    if (--until_slow == 0) {
      slow_tick(slow_now++);
      ++sched_.slow_ticks_run;
      until_slow = ratio;
    }
    ++fast_now_;
    ++sched_.cycles_stepped;

    if (core_done && frontend_->filter().buffered() == 0 &&
        frontend_->cdc().empty() && engines_drained()) {
      // Let in-flight NoC tokens and pipeline residue settle.
      if (++grace > kGraceLimit) break;
    } else {
      grace = 0;
    }
    if (core_done && fast_now_ - core_done_cycle_ > kDrainBackstop) break;
  }
  if (!core_done) core_done_cycle_ = core_->now();
}

Soc::SlowView Soc::make_slow_view(Cycle now_slow) {
  SlowView v;
  v.engines_blocked = engines_blocked_;
  v.drained = engines_drained();
  v.rest_horizon = slow_rest_horizon(now_slow);
  for (u32 e = 0; e < engines_.size(); ++e) {
    v.queue_full[e] = engines_[e].input_full() ? 1 : 0;
    v.queue_free[e] = static_cast<u32>(engines_[e].input_free());
  }
  return v;
}

void Soc::slow_worker(EpochChannel<SlowCmd, SlowView>& ch, Cycle slow_now) {
  core::CdcFifo& cdc = frontend_->cdc();
  u64 spins = 0;
  for (;;) {
    SlowCmd cmd;
    ch.next(&cmd, &spins);
    if (cmd.elide != 0) {
      // The fast thread proved these boundaries structural no-ops against
      // the last boundary view; all they owe is the per-tick stall
      // accounting, charged in bulk exactly like the serial skip paths.
      for (ucore::UCore* uc : ucores_) {
        if (uc != nullptr && !uc->idle() && !uc->halted()) {
          uc->charge_skipped_stall(cmd.elide);
        }
      }
      engines_blocked_ = false;
      slow_now += cmd.elide;
      sched_.slow_ticks_skipped += cmd.elide;
    }
    if (cmd.run != 0) {
      cdc.consumer_acquire_epoch();
      slow_tick(slow_now++);
      ++sched_.slow_ticks_run;
    }
    const SlowView v = make_slow_view(slow_now);
    cdc.consumer_publish_epoch();
    ch.ack(v);
    if (cmd.last != 0) break;
  }
  sched_.pipe_slow_spins = spins;
}

// Two-thread epoch pipeline, bit-identical to the serial schedulers.
//
// Why bit-identity holds: every fast→slow influence crosses through the CDC
// handshake, which settles one full slow cycle after the push — so boundary
// k only ever pops packets pushed before fast cycle k*ratio, one whole epoch
// of lookahead. Every slow→fast influence (engine queue occupancy,
// engines_blocked, drained) mutates only inside slow_tick, i.e. only at
// boundaries — so a snapshot taken at boundary k-1 IS the live value for all
// of epoch k. The fast thread therefore runs epoch k's cycles against the
// boundary-(k-1) view while the slow thread concurrently executes boundary k
// on the pre-epoch-k packet set: exactly the serial interleaving, reordered
// only across provably independent state. The one zero-lag edge — commit-
// order shadow-heap writes for split (ASan/UAF) kernels — is handled by
// never prereleasing boundaries in those configs: a barrier-synced submit
// orders every commit of the epoch before the boundary that may read it.
//
// Each boundary is planned one of three ways:
//   elide      — the boundary-view horizon proves the slow tick would be a
//                structural no-op; charge stall accounting in bulk (the
//                serial event loop does the same inside skip windows).
//   prerelease — real work, and no loop break can preempt the boundary:
//                submit at epoch start, overlap with the epoch's fast
//                cycles, collect at the barrier.
//   sync       — real work but a break could land mid-epoch (or the config
//                splits kernels): submit and collect at the barrier itself.
void Soc::run_pipelined() {
  const u32 ratio = std::max<u32>(1, cfg_.frontend.freq_ratio);
  bool core_done = false;
  u64 grace = 0;
  u32 until_slow = ratio;
  Cycle slow_now = fast_now_ / ratio;  // next boundary index to issue
  bool core_active = true;
  core::CdcFifo& cdc = frontend_->cdc();
  const bool serialize_split = !shadow_mems_.empty();

  // Seed the view from live state before the slow thread exists, then hand
  // every piece of slow-domain state over to it until the join.
  SlowView cur = make_slow_view(slow_now);
  bool eb_view = cur.engines_blocked;
  pipe_view_ = &cur;
  cdc.begin_pipelined();
  EpochChannel<SlowCmd, SlowView> ch;
  u64 pending_elide = 0;
  bool inflight = false;
  std::thread slow_thread([this, &ch, slow_now] { slow_worker(ch, slow_now); });

  // The fast thread's slow_next_event(j): boundary-view rest horizon (frozen
  // between real ticks) combined with the producer-exact CDC head. Exact
  // against the serial schedule — the producer re-acquires at every
  // collected boundary and pops happen nowhere else.
  const auto view_slow_ev = [&](Cycle j) {
    Cycle h = cur.rest_horizon == kNoEvent ? kNoEvent
                                           : std::max(cur.rest_horizon, j);
    const Cycle cdc_ready = cdc.producer_next_ready_slow();
    if (cdc_ready != kNoEvent) h = std::min(h, std::max(cdc_ready, j));
    return h;
  };
  const auto submit_boundary = [&](u8 last) {
    cdc.producer_publish_epoch();
    ch.submit(SlowCmd{pending_elide, 1, last});
    pending_elide = 0;
    inflight = true;
  };
  const auto collect_boundary = [&] {
    cur = ch.collect(&sched_.pipe_fast_spins);
    cdc.producer_acquire_epoch();
    eb_view = cur.engines_blocked;
    inflight = false;
  };
  const auto sync_boundary = [&] {
    submit_boundary(0);
    collect_boundary();
    ++slow_now;
    ++sched_.pipe_synced;
  };
  // No break can land inside the upcoming epoch: the max-cycles cap, the
  // grace counter (which grows by at most `ratio` per epoch), and the drain
  // backstop all stay un-tripped through its last cycle — so its boundary
  // provably fires, and prereleasing it is safe.
  const auto break_free = [&] {
    if (fast_now_ + ratio > cfg_.max_fast_cycles) return false;
    if (grace + ratio > kGraceLimit) return false;
    if (core_done && fast_now_ + ratio > core_done_cycle_ + kDrainBackstop) {
      return false;
    }
    return true;
  };

  while (fast_now_ < cfg_.max_fast_cycles) {
    if (until_slow == ratio) {
      // --- Epoch start: event-skip evaluation, then boundary planning. ----
      FG_CHECK(!inflight);
      const Cycle core_ev = core_active  ? 0
                            : core_done  ? kNoEvent
                                         : core_->next_event();
      if (core_ev > fast_now_ + 1 && frontend_->filter().buffered() == 0) {
        if (!core_done) {
          // Drain window (see the serial loop): jump the core to its
          // horizon; interior boundaries run as barrier-synced real ticks
          // or accumulate as elisions flushed with the next real one.
          const Cycle target = std::min<Cycle>(core_ev, cfg_.max_fast_cycles);
          if (target > fast_now_ + 1) {
            const u64 delta = target - fast_now_;
            core_->skip_to(target);
            Cycle boundary = fast_now_ + (until_slow - 1);
            const bool had_boundary = boundary < target;
            while (boundary < target) {
              const Cycle slow_ev = view_slow_ev(slow_now);
              if (slow_ev > slow_now) {
                const u64 remaining = 1 + (target - 1 - boundary) / ratio;
                const u64 nb =
                    slow_ev == kNoEvent
                        ? remaining
                        : std::min<u64>(remaining, slow_ev - slow_now);
                pending_elide += nb;
                eb_view = false;
                slow_now += nb;
                boundary += nb * ratio;
              } else {
                sync_boundary();
                boundary += ratio;
              }
            }
            until_slow = static_cast<u32>(boundary - target + 1);
            fast_now_ = target;
            sched_.cycles_skipped += delta;
            ++sched_.skips;
            if (had_boundary) ++sched_.drain_windows;
            ++sched_.skip_len_hist[std::min<u32>(
                static_cast<u32>(sched_.skip_len_hist.size() - 1),
                std::bit_width(delta) - 1)];
            if (target == core_ev) {
              ++sched_.bound_core;
            } else {
              ++sched_.bound_cap;
            }
            continue;
          }
        } else {
          // Post-completion skip (see the serial loop), predicates answered
          // from the boundary view and the producer-exact CDC.
          Cycle target = kNoEvent;
          bool bound_is_slow = false;
          const Cycle slow_ev = view_slow_ev(slow_now);
          if (slow_ev != kNoEvent) {
            target =
                fast_now_ + (until_slow - 1) + (slow_ev - slow_now) * ratio;
            bound_is_slow = true;
          }
          Cycle cap = std::min(cfg_.max_fast_cycles,
                               core_done_cycle_ + kDrainBackstop + 1);
          const bool grace_cond = cdc.empty() && cur.drained;
          if (grace_cond) {
            cap = std::min(cap, fast_now_ + (kGraceLimit + 1 - grace));
          }
          if (cap < target) {
            target = cap;
            bound_is_slow = false;
          }
          if (target != kNoEvent && target > fast_now_ + 1) {
            const u64 delta = target - fast_now_;
            const Cycle first_boundary = fast_now_ + (until_slow - 1);
            if (first_boundary < target) {
              const u64 k = 1 + (target - 1 - first_boundary) / ratio;
              pending_elide += k;
              slow_now += k;
              eb_view = false;
              until_slow =
                  static_cast<u32>(first_boundary + k * ratio - target + 1);
            } else {
              until_slow -= static_cast<u32>(delta);
            }
            fast_now_ = target;
            sched_.cycles_skipped += delta;
            ++sched_.skips;
            ++sched_.skip_len_hist[std::min<u32>(
                static_cast<u32>(sched_.skip_len_hist.size() - 1),
                std::bit_width(delta) - 1)];
            if (bound_is_slow) {
              ++sched_.bound_slow;
            } else {
              ++sched_.bound_cap;
            }
            if (grace_cond) {
              grace += delta;
              if (grace > kGraceLimit) break;
            } else {
              grace = 0;
            }
            if (fast_now_ - core_done_cycle_ > kDrainBackstop) break;
            continue;
          }
        }
      }
      // Prerelease: the epoch's boundary carries real work and provably
      // fires — run it on the slow thread while this thread runs the epoch.
      if (!serialize_split && view_slow_ev(slow_now) <= slow_now &&
          break_free()) {
        submit_boundary(0);
        ++slow_now;
        ++sched_.pipe_prereleased;
      }
    }

    // --- One stepped cycle (serial mirror, views for live slow state). ----
    core_active = false;
    if (!core_done) {
      core_active = core_->tick_t(this);
      if (core_->done()) {
        core_done = true;
        core_done_cycle_ = core_->now();
      }
    }
    if (frontend_->filter().buffered() != 0) {
      frontend_->tick_fast(fast_now_, *this, eb_view);
    }
    if (--until_slow == 0) {
      if (inflight) {
        collect_boundary();
      } else {
        const Cycle ev = view_slow_ev(slow_now);
        if (ev > slow_now) {
          ++pending_elide;
          ++slow_now;
          eb_view = false;
        } else {
          sync_boundary();
        }
      }
      until_slow = ratio;
      ++sched_.pipe_epochs;
    }
    ++fast_now_;
    ++sched_.cycles_stepped;

    if (core_done && frontend_->filter().buffered() == 0 && cdc.empty() &&
        cur.drained) {
      if (++grace > kGraceLimit) break;
    } else {
      grace = 0;
    }
    if (core_done && fast_now_ - core_done_cycle_ > kDrainBackstop) break;
  }
  if (!core_done) core_done_cycle_ = core_->now();

  // Teardown: flush any still-pending elisions, stop the slow thread, fold
  // the CDC back to serial storage.
  if (inflight) collect_boundary();
  cdc.producer_publish_epoch();
  ch.submit(SlowCmd{pending_elide, 0, 1});
  pending_elide = 0;
  slow_thread.join();
  cdc.end_pipelined();
  pipe_view_ = nullptr;
}

void Soc::match_detections() const {
  if (match_valid_ && match_cycle_ == fast_now_) return;
  const u32 ratio = std::max<u32>(1, cfg_.frontend.freq_ratio);
  std::vector<DetectionRecord> out;
  u64 total = 0;
  std::unordered_map<u64, size_t> addr_cursor;  // consume address matches FIFO
  for (const Engine& e : engines_) {
    total += e.detections().size();
    for (const ucore::Detection& d : e.detections()) {
      // Match by id (debug-data payload) first, then by faulting address.
      u32 id = 0;
      if (attack_commit_.contains(static_cast<u32>(d.payload))) {
        id = static_cast<u32>(d.payload);
      } else {
        auto it = attack_by_addr_.find(d.aux);
        if (it != attack_by_addr_.end()) {
          size_t& cur = addr_cursor[d.aux];
          if (cur < it->second.size()) id = it->second[cur++];
        }
      }
      if (id == 0) continue;  // spurious (counted apart)
      DetectionRecord r;
      r.attack_id = id;
      r.engine = d.engine;
      r.commit_fast = attack_commit_.at(id);
      r.detect_fast = (d.cycle_slow + 1) * ratio;
      const double cycles = r.detect_fast > r.commit_fast
                                ? static_cast<double>(r.detect_fast - r.commit_fast)
                                : 1.0;
      r.latency_ns = cycles / cfg_.fast_ghz;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DetectionRecord& a, const DetectionRecord& b) {
              return a.attack_id < b.attack_id;
            });
  matched_ = std::move(out);
  spurious_ = total > matched_.size() ? total - matched_.size() : 0;
  match_cycle_ = fast_now_;
  match_valid_ = true;
}

std::vector<DetectionRecord> Soc::detections() const {
  match_detections();
  return matched_;
}

u64 Soc::spurious_detections() const {
  match_detections();
  return spurious_;
}

std::array<double, 5> Soc::stall_fractions() const {
  std::array<double, 5> f{};
  const double cycles = static_cast<double>(std::max<Cycle>(1, core_done_cycle_));
  for (size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(frontend_->stats().stall_by_cause[i]) / cycles;
  }
  return f;
}

u64 Soc::total_packets_processed() const {
  u64 n = 0;
  for (const Engine& e : engines_) {
    n += e.ucore ? e.ucore->stats().packets_popped : e.ha->packets_processed();
  }
  return n;
}

}  // namespace fg::soc
