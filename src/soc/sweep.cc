#include "src/soc/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <thread>

#include "src/common/check.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"

namespace fg::soc {

namespace {
double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}
}  // namespace

SweepRunner::SweepRunner(SweepConfig cfg)
    : jobs_(cfg.jobs > 0 ? cfg.jobs : ThreadPool::default_jobs()),
      workers_(std::min(
          jobs_, std::max<u32>(1, std::thread::hardware_concurrency()))) {}

u32 SweepRunner::add(SweepPoint p) {
  FG_CHECK(!ran_ && "points must be registered before run_all()");
  points_.push_back(std::move(p));
  // results_ mirrors points_ from registration on, so result(i) is safe
  // (executed == false) even if run_all never runs — e.g. a bench binary
  // invoked with a list-tests flag.
  results_.emplace_back();
  return static_cast<u32>(points_.size() - 1);
}

PointResult SweepRunner::execute(const SweepPoint& p) {
  const double t0 = now_ms();
  PointResult r;
  switch (p.kind) {
    case SweepPoint::Kind::kFireguard:
      r.run = run_fireguard(p.wl, p.sc);
      break;
    case SweepPoint::Kind::kSoftware:
      r.run = run_software(p.wl, p.scheme, p.sc);
      break;
  }
  const double run_ms = now_ms() - t0;
  double base_ms = 0.0;
  if (p.want_slowdown) {
    const double b0 = now_ms();
    bool ran_baseline = false;
    r.baseline_cycles = cache_.get(p.wl, p.sc, &ran_baseline);
    // Only the point that actually ran the baseline is charged for it;
    // points that hit the cache — or blocked on another worker's in-flight
    // miss — did no baseline work of their own.
    if (ran_baseline) base_ms = now_ms() - b0;
    r.slowdown = static_cast<double>(r.run.cycles) /
                 static_cast<double>(std::max<Cycle>(1, r.baseline_cycles));
  }
  r.wall_ms = run_ms + base_ms;
  r.executed = true;
  return r;
}

const std::vector<PointResult>& SweepRunner::run_all(
    const std::function<bool(const SweepPoint&)>& select) {
  if (ran_) return results_;
  const double t0 = now_ms();
  std::vector<u32> chosen;
  chosen.reserve(points_.size());
  for (u32 i = 0; i < points_.size(); ++i) {
    if (!select || select(points_[i])) chosen.push_back(i);
  }
  if (workers_ <= 1 || chosen.size() <= 1) {
    for (const u32 i : chosen) results_[i] = execute(points_[i]);
  } else {
    ThreadPool pool(workers_);
    std::vector<std::future<PointResult>> futures;
    futures.reserve(chosen.size());
    for (const u32 i : chosen) {
      futures.push_back(
          pool.submit([this, i] { return execute(points_[i]); }));
    }
    // Futures are collected in registration order, so results are stable
    // regardless of which worker finished first.
    for (size_t k = 0; k < chosen.size(); ++k) {
      results_[chosen[k]] = futures[k].get();
    }
  }
  wall_ms_ = now_ms() - t0;
  ran_ = true;
  return results_;
}

double SweepRunner::serial_ms() const {
  double sum = 0.0;
  for (const PointResult& r : results_) sum += r.wall_ms;
  return sum;
}

void SweepRunner::print_summary(const char* title) const {
  std::printf("\n=== %s: geomean slowdowns ===\n", title);
  std::map<std::string, std::vector<double>> by_series;
  size_t executed = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (!results_[i].executed) continue;
    ++executed;
    if (points_[i].series.empty() || !points_[i].want_slowdown) continue;
    by_series[points_[i].series].push_back(results_[i].slowdown);
  }
  for (const auto& [series, values] : by_series) {
    std::printf("  %-36s %6.3f  (n=%zu)\n", series.c_str(), geomean(values),
                values.size());
  }
  const double serial = serial_ms();
  std::printf(
      "sweep: %zu/%zu points on %u jobs (%u workers), wall %.2f s "
      "(serial-equivalent %.2f s, est. speedup %.2fx)\n",
      executed, points_.size(), jobs_, workers_, wall_ms_ / 1000.0,
      serial / 1000.0, wall_ms_ > 0.0 ? serial / wall_ms_ : 0.0);
  std::printf(
      "baseline cache: %llu hits, %llu misses, %llu in-flight waits\n",
      static_cast<unsigned long long>(cache_.hits()),
      static_cast<unsigned long long>(cache_.misses()),
      static_cast<unsigned long long>(cache_.inflight_waits()));
}

}  // namespace fg::soc
