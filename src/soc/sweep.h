// Declarative parallel experiment runner.
//
// Every paper figure is a sweep of independent, deterministic
// (workload × SoC-config) simulation points. A bench binary enumerates its
// points once (`add`), then `run_all` executes them across FG_JOBS worker
// threads and returns `PointResult`s in stable point order — results are
// bit-identical to a serial run because each point owns its entire
// simulation state (trace generator, core, engines) and its seed is fixed
// by the point itself, never by thread assignment or completion order.
//
// The runner owns one mutex-guarded BaselineCache shared by every point, so
// concurrent misses on the same trace block on a single baseline run
// instead of duplicating it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/soc/experiment.h"

namespace fg::soc {

/// One simulation point of a figure sweep.
struct SweepPoint {
  std::string name;    // unique label, e.g. "fig10/pmc/4ucores/ferret"
  std::string series;  // summary aggregation key ("" = not summarized)
  trace::WorkloadConfig wl;
  SocConfig sc;

  enum class Kind { kFireguard, kSoftware };
  Kind kind = Kind::kFireguard;
  baseline::SwScheme scheme = baseline::SwScheme::kShadowStackLlvm;

  /// Also run (or fetch from the cache) the unmonitored baseline and fill
  /// in `PointResult::slowdown`.
  bool want_slowdown = true;
};

struct PointResult {
  RunResult run;
  Cycle baseline_cycles = 0;
  double slowdown = 0.0;
  /// This point's own work: the monitored run, plus the baseline run only
  /// if this point executed it (time spent blocked on another worker's
  /// in-flight baseline is excluded, so summing wall_ms over points gives
  /// an honest serial-equivalent cost).
  double wall_ms = 0.0;
  bool executed = false;  // false if the point was filtered out of run_all
};

struct SweepConfig {
  /// Worker threads; 0 = FG_JOBS env var, else hardware concurrency.
  u32 jobs = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig cfg = {});

  /// Registers a point; returns its stable index.
  u32 add(SweepPoint p);

  /// Executes every registered point (jobs > 1: across the thread pool) and
  /// returns results indexed exactly like the points were added. An optional
  /// `select` predicate restricts execution to matching points (the others
  /// keep a default, `executed == false` result — used by the benches to
  /// honor --benchmark_filter). Idempotent: a second call returns the cached
  /// results regardless of its predicate.
  const std::vector<PointResult>& run_all(
      const std::function<bool(const SweepPoint&)>& select = {});

  const SweepPoint& point(u32 idx) const { return points_[idx]; }
  const PointResult& result(u32 idx) const { return results_[idx]; }
  size_t n_points() const { return points_.size(); }
  /// Requested job count (FG_JOBS / config).
  u32 jobs() const { return jobs_; }
  /// Worker threads run_all actually uses: jobs capped at the machine's
  /// hardware concurrency (oversubscription only adds scheduling churn —
  /// the deterministic results are independent of worker count).
  u32 workers() const { return workers_; }

  BaselineCache& baseline_cache() { return cache_; }

  /// Whole-sweep wall clock of `run_all` in milliseconds.
  double wall_ms() const { return wall_ms_; }
  /// Sum of per-point wall clocks (the serial-equivalent cost).
  double serial_ms() const;

  /// Prints per-series geomean slowdowns plus the sweep wall clock, the
  /// parallel speedup vs. the per-point sum, and baseline-cache hit/miss
  /// counters.
  void print_summary(const char* title) const;

 private:
  PointResult execute(const SweepPoint& p);

  u32 jobs_;
  u32 workers_;
  BaselineCache cache_;
  std::vector<SweepPoint> points_;
  std::vector<PointResult> results_;
  bool ran_ = false;
  double wall_ms_ = 0.0;
};

}  // namespace fg::soc
