// The paper's workload set and figure sweep grids, defined once so the
// bench binaries and tools/simspeed enumerate the SAME points — a grid
// tuned in one place cannot silently drift from the speed trajectory that
// claims to track it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/soc/sweep.h"

namespace fg::soc {

/// The nine PARSEC-like profiles, in the order the figures list them.
const std::vector<std::string>& paper_workloads();

/// The benches' standard workload configuration: fixed seed 42, warmup =
/// one tenth of the trace, plus an optional attack plan.
trace::WorkloadConfig paper_workload(
    const std::string& name, u64 n_insts,
    std::vector<std::pair<trace::AttackKind, u32>> attacks = {});

/// Figure 10 grid: slowdown vs. µcore count for all four guardian kernels
/// (PMC / shadow stack over {2,4,6}; ASan / UaF over {2,4,6,8,10,12}), all
/// nine workloads — 162 points. `quick` shrinks it to PMC+ASan at {2,4}
/// (36 points) for CI-sized runs. Point names/series match
/// bench_fig10_scalability.
std::vector<SweepPoint> fig10_points(u64 n_insts, bool quick = false);

}  // namespace fg::soc
