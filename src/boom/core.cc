#include "src/boom/core.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::boom {

BoomCore::BoomCore(const CoreConfig& cfg, mem::MemHierarchy& mem,
                   trace::TraceSource& src)
    : cfg_(cfg),
      mem_(mem),
      src_(src),
      pred_(cfg.predictor),
      rob_(cfg.rob_entries),
      rename_(cfg.phys_regs),
      lsq_(LsqConfig{cfg.ldq_entries, cfg.stq_entries,
                     cfg.store_load_forwarding, cfg.stlf_latency}),
      fu_int_(cfg.n_int_alu, 0),
      fu_fp_(cfg.n_fp, 0),
      fu_mem_(cfg.n_mem, 0),
      fu_jmp_(cfg.n_jmp, 0),
      fu_csr_(cfg.n_csr, 0) {
  preg_ready_.assign(cfg.phys_regs, 0);
}

Cycle BoomCore::fu_schedule(std::vector<Cycle>& units, Cycle ready) {
  // Pick the unit that frees earliest; execution starts when both the unit
  // and the operands are ready.
  auto it = std::min_element(units.begin(), units.end());
  const Cycle start = std::max(*it, ready);
  return start;
}

void BoomCore::do_commit(CommitSink* sink) {
  // Model PRF read-port contention from the data-forwarding channel: each
  // port the sink preempts this cycle delays one integer-FU availability by
  // a cycle (Figure 2 d: Mini-Filter[x] has priority on Read_Ctrl[x]).
  if (sink != nullptr) {
    const u32 preempted = sink->prf_ports_preempted();
    for (u32 i = 0; i < preempted && i < fu_int_.size(); ++i) {
      // The preempted read port pushes the next issue on this pipe back by
      // one cycle ("an instruction attempting to use the same port will be
      // delayed until the next cycle").
      Cycle& next_free = fu_int_[i];
      next_free = std::max(next_free, now_) + 1;
      ++stats_.prf_contention_delays;
    }
  }

  for (u32 lane = 0; lane < cfg_.commit_width; ++lane) {
    if (rob_.empty()) {
      ++stats_.commit_stall_empty;
      return;
    }
    RobEntry& head = rob_.front();
    if (head.done_at > now_) {
      ++stats_.commit_stall_empty;
      return;
    }
    if (sink != nullptr && !sink->can_commit(lane, head.inst)) {
      ++stats_.commit_stall_fireguard;
      return;  // in-order commit: younger lanes stall too
    }
    if (head.is_load) lsq_.commit_load();
    if (head.is_store) lsq_.commit_store();
    rename_.commit(head.ren);
    if (sink != nullptr) sink->on_commit(lane, head.inst, now_);
    ++stats_.committed;
    if (stats_.committed == warmup_target_) warmup_cycle_ = now_;
    rob_.pop();
  }
}

u32 BoomCore::exec_latency_class(const trace::TraceInst& ti) const {
  using isa::InstClass;
  switch (ti.cls) {
    case InstClass::kIntMul: return cfg_.lat_mul;
    case InstClass::kIntDiv: return cfg_.lat_div;
    case InstClass::kFpAlu: return cfg_.lat_fp;
    case InstClass::kFpMulDiv: return cfg_.lat_fp_muldiv;
    case InstClass::kBranch:
    case InstClass::kJump:
    case InstClass::kCall:
    case InstClass::kRet: return cfg_.lat_jmp;
    default: return cfg_.lat_int;
  }
}

bool BoomCore::fetch_next() {
  if (have_pending_ || trace_done_) return have_pending_;
  if (!src_.next(pending_)) {
    trace_done_ = true;
    return false;
  }
  have_pending_ = true;

  // Instruction-cache model: crossing into a new 64B line costs an i-cache
  // access; the frontend cannot deliver the instruction earlier.
  const u64 line = pending_.pc / 64;
  if (line != cur_fetch_line_) {
    cur_fetch_line_ = line;
    const u32 lat = mem_.access_inst(pending_.pc, now_);
    if (lat > 2) frontend_ready_ = std::max(frontend_ready_, now_ + (lat - 2));
  }
  return true;
}

void BoomCore::do_dispatch(CommitSink*) {
  using isa::InstClass;
  for (u32 slot = 0; slot < cfg_.fetch_width; ++slot) {
    if (!fetch_next()) return;
    if (frontend_ready_ > now_) return;

    // Structural hazards.
    if (rob_.full()) {
      ++stats_.dispatch_stall_rob;
      return;
    }
    // Issue-queue occupancy: release entries whose execution has started.
    while (!iq_release_.empty() && iq_release_.top() <= now_) iq_release_.pop();
    if (iq_release_.size() >= cfg_.iq_entries) {
      ++stats_.dispatch_stall_iq;
      return;
    }
    const trace::TraceInst& ti = pending_;
    const bool is_load = ti.cls == InstClass::kLoad;
    const bool is_store = ti.cls == InstClass::kStore;
    if (is_load && lsq_.ldq_full()) {
      ++stats_.dispatch_stall_lsq;
      return;
    }
    if (is_store && lsq_.stq_full()) {
      ++stats_.dispatch_stall_lsq;
      return;
    }
    const bool has_dst = ti.rd != kNoReg && ti.rd != 0;
    if (has_dst && !rename_.can_allocate()) {
      ++stats_.dispatch_stall_pregs;
      return;
    }

    // Rename: map sources through the RAT, allocate a physical destination.
    const Renamed ren = rename_.rename(has_dst ? ti.rd : kNoReg, ti.rs1, ti.rs2);

    // Operand readiness from the physical registers.
    Cycle ready = now_ + 1;
    if (ren.ps1 != kNoPreg) ready = std::max(ready, preg_ready_[ren.ps1]);
    if (ren.ps2 != kNoPreg) ready = std::max(ready, preg_ready_[ren.ps2]);

    // Schedule on a functional unit.
    Cycle start;
    Cycle done;
    switch (ti.cls) {
      case InstClass::kLoad: {
        start = fu_schedule(fu_mem_, ready);
        const LoadPlan plan = lsq_.dispatch_load(ti.mem_addr, ti.mem_size, start);
        if (plan.forwarded) {
          // Data comes straight from the STQ; no cache access.
          done = plan.earliest_start;
          ++stats_.stlf_forwards;
        } else {
          start = plan.earliest_start;  // partial-overlap ordering, if any
          const u32 lat = mem_.access_data(ti.mem_addr, false, start);
          done = start + lat;
        }
        break;
      }
      case InstClass::kStore: {
        start = fu_schedule(fu_mem_, ready);
        // Stores write at commit; address generation + STQ insert only.
        mem_.access_data(ti.mem_addr, true, start);
        lsq_.dispatch_store(ti.mem_addr, ti.mem_size, ready, mem_seq_++);
        done = start + 1;
        break;
      }
      case InstClass::kFpAlu:
      case InstClass::kFpMulDiv:
      case InstClass::kIntMul:
      case InstClass::kIntDiv: {
        auto& pool = (ti.cls == InstClass::kFpAlu || ti.cls == InstClass::kFpMulDiv)
                         ? fu_fp_
                         : (fu_fp_.empty() ? fu_int_ : fu_fp_);  // shared unit
        start = fu_schedule(pool, ready);
        done = start + exec_latency_class(ti);
        break;
      }
      case InstClass::kBranch:
      case InstClass::kJump:
      case InstClass::kCall:
      case InstClass::kRet: {
        start = fu_schedule(fu_jmp_, ready);
        done = start + cfg_.lat_jmp;
        break;
      }
      case InstClass::kCsr:
      case InstClass::kGuardEvent: {
        start = fu_schedule(fu_csr_, ready);
        done = start + 1;
        break;
      }
      default: {
        start = fu_schedule(fu_int_, ready);
        done = start + cfg_.lat_int;
        break;
      }
    }

    // Occupy the chosen unit (rough: one cycle of issue bandwidth).
    auto occupy = [start](std::vector<Cycle>& units) {
      auto it = std::min_element(units.begin(), units.end());
      *it = start + 1;
    };
    switch (ti.cls) {
      case InstClass::kLoad:
      case InstClass::kStore: occupy(fu_mem_); break;
      case InstClass::kFpAlu:
      case InstClass::kFpMulDiv: occupy(fu_fp_); break;
      case InstClass::kIntMul:
      case InstClass::kIntDiv: occupy(fu_fp_); break;
      case InstClass::kBranch:
      case InstClass::kJump:
      case InstClass::kCall:
      case InstClass::kRet: occupy(fu_jmp_); break;
      case InstClass::kCsr:
      case InstClass::kGuardEvent: occupy(fu_csr_); break;
      default: occupy(fu_int_); break;
    }

    // Writeback: the physical destination becomes ready at completion.
    if (ren.pd != kNoPreg) preg_ready_[ren.pd] = done;

    // Branch prediction: a mispredict prevents younger instructions from
    // dispatching until the branch resolves and the frontend refills.
    bool mispredict = false;
    bool btb_bubble = false;
    switch (ti.cls) {
      case InstClass::kBranch:
        mispredict = !pred_.predict_cond(ti.pc, ti.taken, ti.target);
        break;
      case InstClass::kJump:
        if (isa::opcode_of(ti.enc) == isa::kOpJalr) {
          mispredict = !pred_.predict_indirect(ti.pc, ti.target);
        } else {
          btb_bubble = !pred_.predict_direct(ti.pc, ti.target);
        }
        break;
      case InstClass::kCall:
        if (isa::opcode_of(ti.enc) == isa::kOpJalr) {
          mispredict = !pred_.predict_indirect(ti.pc, ti.target);
        } else {
          btb_bubble = !pred_.predict_direct(ti.pc, ti.target);
        }
        pred_.push_ras(ti.pc + 4);
        break;
      case InstClass::kRet:
        mispredict = !pred_.predict_ret(ti.target);
        break;
      default:
        break;
    }
    if (mispredict) {
      ++stats_.mispredicts;
      frontend_ready_ = done + cfg_.redirect_penalty;
      cur_fetch_line_ = ~u64{0};
    } else if (btb_bubble) {
      frontend_ready_ = std::max(frontend_ready_, now_ + cfg_.btb_bubble);
    }

    // Enter the ROB / IQ / LSQ.
    RobEntry e;
    e.inst = ti;
    e.ren = ren;
    e.done_at = done;
    e.has_dst = has_dst;
    e.is_load = is_load;
    e.is_store = is_store;
    rob_.push(e);
    iq_release_.push(start);
    if (is_load) lsq_.note_load_dispatched();
    have_pending_ = false;

    if (mispredict) return;  // nothing younger dispatches this cycle
  }
}

void BoomCore::tick(CommitSink* sink) {
  do_commit(sink);
  do_dispatch(sink);
  ++now_;
  ++stats_.cycles;
}

Cycle BoomCore::run_to_end(CommitSink* sink, u64 max_cycles) {
  while (!done() && now_ < max_cycles) tick(sink);
  return now_;
}

}  // namespace fg::boom
