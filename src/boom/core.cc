#include "src/boom/core.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/invariant.h"
#include "src/common/simctl.h"

namespace fg::boom {

BoomCore::BoomCore(const CoreConfig& cfg, mem::MemHierarchy& mem,
                   trace::TraceSource& src)
    : cfg_(cfg),
      mem_(mem),
      src_(src),
      pred_(cfg.predictor),
      rob_(cfg.rob_entries),
      rename_(cfg.phys_regs),
      lsq_(LsqConfig{cfg.ldq_entries, cfg.stq_entries,
                     cfg.store_load_forwarding, cfg.stlf_latency}),
      fu_int_(cfg.n_int_alu, 0),
      fu_fp_(cfg.n_fp, 0),
      fu_mem_(cfg.n_mem, 0),
      fu_jmp_(cfg.n_jmp, 0),
      fu_csr_(cfg.n_csr, 0) {
  preg_ready_.assign(cfg.phys_regs, 0);
  // Lazy draining caps the release set at one over-full check past the IQ
  // capacity plus the entries a drain leaves in the future (<= ROB size).
  iq_release_.reserve(cfg.iq_entries + cfg.rob_entries);
}

Cycle* BoomCore::fu_pick(std::vector<Cycle>& units) {
  // Pick the unit that frees earliest; execution starts when both the unit
  // and the operands are ready. The caller occupies the returned unit once
  // the start cycle is final (one scan instead of schedule + re-scan).
  return &*std::min_element(units.begin(), units.end());
}

u32 BoomCore::exec_latency_class(const trace::TraceInst& ti) const {
  using isa::InstClass;
  switch (ti.cls) {
    case InstClass::kIntMul: return cfg_.lat_mul;
    case InstClass::kIntDiv: return cfg_.lat_div;
    case InstClass::kFpAlu: return cfg_.lat_fp;
    case InstClass::kFpMulDiv: return cfg_.lat_fp_muldiv;
    case InstClass::kBranch:
    case InstClass::kJump:
    case InstClass::kCall:
    case InstClass::kRet: return cfg_.lat_jmp;
    default: return cfg_.lat_int;
  }
}

bool BoomCore::fetch_next() {
  if (have_pending_ || trace_done_) return have_pending_;
  if (!src_.next(pending_)) {
    trace_done_ = true;
    return false;
  }
  have_pending_ = true;
  // The pull (and its possible i-cache access below) is a timing-visible
  // state change anchored to this cycle: the tick is not a fixed point.
  active_ = true;

  // Instruction-cache model: crossing into a new 64B line costs an i-cache
  // access; the frontend cannot deliver the instruction earlier.
  const u64 line = pending_.pc / 64;
  if (line != cur_fetch_line_) {
    cur_fetch_line_ = line;
    const u32 lat = mem_.access_inst(pending_.pc, now_);
    if (lat > 2) frontend_ready_ = std::max(frontend_ready_, now_ + (lat - 2));
  }
  return true;
}

void BoomCore::do_dispatch(CommitSink*) {
  using isa::InstClass;
  for (u32 slot = 0; slot < cfg_.fetch_width; ++slot) {
    if (!have_pending_ && !fetch_next()) {
      dispatch_block_ = DispatchBlock::kTraceDone;
      return;
    }
    if (frontend_ready_ > now_) {
      dispatch_block_ = DispatchBlock::kFrontendReady;
      return;
    }

    // Structural hazards.
    if (rob_.full()) {
      ++stats_.dispatch_stall_rob;
      dispatch_block_ = DispatchBlock::kRobFull;
      return;
    }
    // Issue-queue occupancy: entries leave the IQ when execution starts.
    // Releases are drained lazily — only a full IQ needs the set walked,
    // and draining late removes exactly the entries draining eagerly would
    // have (every release time <= now_).
    if (iq_release_.size() >= cfg_.iq_entries) {
      // Compact out the released entries and remember the earliest pending
      // release — that is the stall's horizon, computed for free here
      // instead of with a second scan in next_event().
      Cycle* out = iq_release_.data();
      Cycle next_release = kNoEvent;
      for (const Cycle c : iq_release_) {
        if (c <= now_) continue;
        *out++ = c;
        next_release = std::min(next_release, c);
      }
      iq_release_.resize(static_cast<size_t>(out - iq_release_.data()));
      if (iq_release_.size() >= cfg_.iq_entries) {
        ++stats_.dispatch_stall_iq;
        dispatch_block_ = DispatchBlock::kIqFull;
        iq_next_release_ = next_release;
        return;
      }
    }
    const trace::TraceInst& ti = pending_;
    const bool is_load = ti.cls == InstClass::kLoad;
    const bool is_store = ti.cls == InstClass::kStore;
    if (is_load && lsq_.ldq_full()) {
      ++stats_.dispatch_stall_lsq;
      dispatch_block_ = DispatchBlock::kLsqFull;
      return;
    }
    if (is_store && lsq_.stq_full()) {
      ++stats_.dispatch_stall_lsq;
      dispatch_block_ = DispatchBlock::kLsqFull;
      return;
    }
    const bool has_dst = ti.rd != kNoReg && ti.rd != 0;
    if (has_dst && !rename_.can_allocate()) {
      ++stats_.dispatch_stall_pregs;
      dispatch_block_ = DispatchBlock::kPregs;
      return;
    }

    // Rename: map sources through the RAT, allocate a physical destination.
    const Renamed ren = rename_.rename(has_dst ? ti.rd : kNoReg, ti.rs1, ti.rs2);

    // Operand readiness from the physical registers.
    Cycle ready = now_ + 1;
    if (ren.ps1 != kNoPreg) ready = std::max(ready, preg_ready_[ren.ps1]);
    if (ren.ps2 != kNoPreg) ready = std::max(ready, preg_ready_[ren.ps2]);

    // Schedule on a functional unit. The chosen unit is occupied (rough:
    // one cycle of issue bandwidth) once the start cycle is final.
    Cycle start;
    Cycle done;
    Cycle* unit;
    switch (ti.cls) {
      case InstClass::kLoad: {
        unit = fu_pick(fu_mem_);
        start = std::max(*unit, ready);
        const LoadPlan plan = lsq_.dispatch_load(ti.mem_addr, ti.mem_size, start);
        if (plan.forwarded) {
          // Data comes straight from the STQ; no cache access.
          done = plan.earliest_start;
          ++stats_.stlf_forwards;
        } else {
          start = plan.earliest_start;  // partial-overlap ordering, if any
          const u32 lat = mem_.access_data(ti.mem_addr, false, start);
          done = start + lat;
        }
        break;
      }
      case InstClass::kStore: {
        unit = fu_pick(fu_mem_);
        start = std::max(*unit, ready);
        // Stores write at commit; address generation + STQ insert only.
        mem_.access_data(ti.mem_addr, true, start);
        lsq_.dispatch_store(ti.mem_addr, ti.mem_size, ready, mem_seq_++);
        done = start + 1;
        break;
      }
      case InstClass::kFpAlu:
      case InstClass::kFpMulDiv:
      case InstClass::kIntMul:
      case InstClass::kIntDiv: {
        auto& pool = (ti.cls == InstClass::kFpAlu || ti.cls == InstClass::kFpMulDiv)
                         ? fu_fp_
                         : (fu_fp_.empty() ? fu_int_ : fu_fp_);  // shared unit
        unit = fu_pick(pool);
        start = std::max(*unit, ready);
        done = start + exec_latency_class(ti);
        break;
      }
      case InstClass::kBranch:
      case InstClass::kJump:
      case InstClass::kCall:
      case InstClass::kRet: {
        unit = fu_pick(fu_jmp_);
        start = std::max(*unit, ready);
        done = start + cfg_.lat_jmp;
        break;
      }
      case InstClass::kCsr:
      case InstClass::kGuardEvent: {
        unit = fu_pick(fu_csr_);
        start = std::max(*unit, ready);
        done = start + 1;
        break;
      }
      default: {
        unit = fu_pick(fu_int_);
        start = std::max(*unit, ready);
        done = start + cfg_.lat_int;
        break;
      }
    }
    *unit = start + 1;

    // Writeback: the physical destination becomes ready at completion.
    if (ren.pd != kNoPreg) preg_ready_[ren.pd] = done;

    // Branch prediction: a mispredict prevents younger instructions from
    // dispatching until the branch resolves and the frontend refills.
    bool mispredict = false;
    bool btb_bubble = false;
    switch (ti.cls) {
      case InstClass::kBranch:
        mispredict = !pred_.predict_cond(ti.pc, ti.taken, ti.target);
        break;
      case InstClass::kJump:
        if (isa::opcode_of(ti.enc) == isa::kOpJalr) {
          mispredict = !pred_.predict_indirect(ti.pc, ti.target);
        } else {
          btb_bubble = !pred_.predict_direct(ti.pc, ti.target);
        }
        break;
      case InstClass::kCall:
        if (isa::opcode_of(ti.enc) == isa::kOpJalr) {
          mispredict = !pred_.predict_indirect(ti.pc, ti.target);
        } else {
          btb_bubble = !pred_.predict_direct(ti.pc, ti.target);
        }
        pred_.push_ras(ti.pc + 4);
        break;
      case InstClass::kRet:
        mispredict = !pred_.predict_ret(ti.target);
        break;
      default:
        break;
    }
    if (mispredict) {
      ++stats_.mispredicts;
      frontend_ready_ = done + cfg_.redirect_penalty;
      cur_fetch_line_ = ~u64{0};
    } else if (btb_bubble) {
      frontend_ready_ = std::max(frontend_ready_, now_ + cfg_.btb_bubble);
    }

    // Enter the ROB / IQ / LSQ (in place: RobEntry carries the TraceInst,
    // so a stack copy + push would move it twice).
    RobEntry& e = rob_.push_slot();
    e.inst = ti;
    e.ren = ren;
    e.done_at = done;
    e.has_dst = has_dst;
    e.is_load = is_load;
    e.is_store = is_store;
    iq_release_.push_back(start);
    // Occupancy bounds: the lazily-drained release set stays within the
    // reserve cap (one over-full check past the IQ capacity plus what a
    // drain leaves in the future), and the LDQ/STQ never exceed Table II.
    FG_INVARIANT(iq_release_.size() <= cfg_.iq_entries + cfg_.rob_entries,
                 "boom.iq_release_bound");
    FG_INVARIANT(lsq_.ldq_used() <= cfg_.ldq_entries &&
                     lsq_.stq_used() <= cfg_.stq_entries,
                 "boom.lsq_occupancy");
    if (is_load) lsq_.note_load_dispatched();
    have_pending_ = false;
    dispatch_block_ = DispatchBlock::kNone;
    active_ = true;

    if (mispredict) return;  // nothing younger dispatches this cycle
  }
}

bool BoomCore::tick(CommitSink* sink) { return tick_t(sink); }

Cycle BoomCore::next_event() const {
  Cycle h = kNoEvent;
  // Commit horizon: the ROB head completes (a sink refusal past that point
  // forces stepping, but stepping at the horizon re-checks it).
  if (!rob_.empty()) h = std::min(h, rob_.front().done_at);
  // Dispatch horizon, from the block the fixed-point tick recorded.
  switch (dispatch_block_) {
    case DispatchBlock::kFrontendReady:
      h = std::min(h, frontend_ready_);
      break;
    case DispatchBlock::kIqFull:
      // The full check drained entries <= now_ and recorded the earliest
      // remaining release.
      h = std::min(h, iq_next_release_);
      break;
    case DispatchBlock::kRobFull:
    case DispatchBlock::kLsqFull:
    case DispatchBlock::kPregs:
      // These clear only when the ROB head commits; the commit horizon
      // above already bounds the skip (the ROB cannot be empty here).
      break;
    case DispatchBlock::kTraceDone:
      break;
    case DispatchBlock::kNone:
      // Defensive: no recorded block (tick was active) — do not skip.
      return now_ + 1;
  }
  return h;
}

void BoomCore::skip_to(Cycle target) {
  FG_CHECK(target >= now_);
  // Only a fixed-point core may be fast-forwarded: the dispatch-block hint
  // recorded by the last (inactive) tick is what skip_to charges stalls by.
  FG_INVARIANT(!active_, "boom.skip_fixed_point");
  // The horizon contract both schedulers lean on (the serial loop skips
  // straight from next_event(); the pipelined fast thread additionally
  // sizes whole elided boundary stretches from it, so an overshoot here
  // would silently corrupt a run rather than just a counter): the target
  // must not pass the first cycle this core can act again.
  FG_INVARIANT(target <= next_event(), "boom.skip_within_horizon");
  const u64 d = target - now_;
  if (d == 0) return;
  stats_.cycles += d;
  // Every skipped cycle's do_commit would have stalled on an empty ROB or a
  // not-yet-complete head (a ready head or a sink refusal makes the tick
  // active, which forbids skipping).
  stats_.commit_stall_empty += d;
  switch (dispatch_block_) {
    case DispatchBlock::kRobFull: stats_.dispatch_stall_rob += d; break;
    case DispatchBlock::kIqFull: stats_.dispatch_stall_iq += d; break;
    case DispatchBlock::kLsqFull: stats_.dispatch_stall_lsq += d; break;
    case DispatchBlock::kPregs: stats_.dispatch_stall_pregs += d; break;
    case DispatchBlock::kFrontendReady:
    case DispatchBlock::kTraceDone:
    case DispatchBlock::kNone:
      break;  // those early returns charge no dispatch stall counter
  }
  now_ = target;
}

Cycle BoomCore::run_to_end(CommitSink* sink, u64 max_cycles) {
  // Event-driven fast-forward is only safe against a known-idempotent sink;
  // a bare core (baseline runs) qualifies, an arbitrary CommitSink may
  // observe every cycle, so it falls back to stepping.
  if (sink == nullptr && !cycle_exact()) {
    while (!done() && now_ < max_cycles) {
      if (!tick(nullptr) && !done()) {
        const Cycle ev = next_event();
        const Cycle target = std::min<Cycle>(ev, max_cycles);
        if (target > now_) skip_to(target);
      }
    }
    return now_;
  }
  while (!done() && now_ < max_cycles) tick(sink);
  return now_;
}

}  // namespace fg::boom
