#include "src/boom/rename.h"

#include "src/common/check.h"

namespace fg::boom {

RenameStage::RenameStage(u32 n_phys) {
  FG_CHECK(n_phys >= 33);
  rat_.resize(32);
  for (u16 a = 0; a < 32; ++a) rat_[a] = a;
  free_list_.reserve(n_phys - 32);
  // Highest-numbered pregs are handed out first (LIFO), matching the common
  // free-list implementation; any order is architecturally equivalent.
  for (u16 p = 32; p < n_phys; ++p) free_list_.push_back(p);
}

Renamed RenameStage::rename(u8 rd, u8 rs1, u8 rs2) {
  Renamed r;
  if (rs1 != kNoReg && (rs1 & 31) != 0) r.ps1 = rat_[rs1 & 31];
  if (rs2 != kNoReg && (rs2 & 31) != 0) r.ps2 = rat_[rs2 & 31];
  if (rd != kNoReg && (rd & 31) != 0) {
    FG_CHECK(!free_list_.empty());
    r.pd = free_list_.back();
    free_list_.pop_back();
    r.stale = rat_[rd & 31];
    rat_[rd & 31] = r.pd;
  }
  return r;
}

void RenameStage::commit(const Renamed& r) {
  if (r.stale != kNoPreg) free_list_.push_back(r.stale);
}

void RenameStage::rollback(u8 rd, const Renamed& r) {
  if (r.pd != kNoPreg) {
    FG_CHECK(rat_[rd & 31] == r.pd);
    rat_[rd & 31] = r.stale;
    free_list_.push_back(r.pd);
  }
}

}  // namespace fg::boom
