// Explicit register renaming: a Register Alias Table over the architectural
// integer space and a physical-register free list.
//
// The paper's data-forwarding channel reads committed operand data out of the
// PRFs by physical index (Figure 2: "address registers storing the PRF
// indices accessed by each instruction"), so the model carries real physical
// indices through dispatch and commit rather than a free-register counter.
// Renaming follows the standard BOOM scheme: dispatch allocates a new
// physical destination and remembers the previous mapping; commit frees the
// *previous* mapping (the new one becomes architectural); a pipeline flush
// would roll back to the committed RAT (the trace-driven model never
// squashes mid-flight, so rollback appears only in the unit tests).
#pragma once

#include <vector>

#include "src/common/types.h"

namespace fg::boom {

inline constexpr u16 kNoPreg = 0xffff;

/// Result of renaming one instruction.
struct Renamed {
  u16 ps1 = kNoPreg;    // physical source 1 (kNoPreg if unused)
  u16 ps2 = kNoPreg;    // physical source 2
  u16 pd = kNoPreg;     // newly allocated destination
  u16 stale = kNoPreg;  // previous mapping of rd, freed at commit
};

class RenameStage {
 public:
  /// `n_phys` total physical registers; the 32 architectural registers are
  /// mapped 1:1 at reset, so `n_phys - 32` are initially free.
  explicit RenameStage(u32 n_phys);

  /// True if a destination register can be allocated this cycle.
  bool can_allocate() const { return !free_list_.empty(); }
  size_t free_count() const { return free_list_.size(); }

  /// Rename an instruction. Register index 0 (x0) and kNoReg (0xff) sources
  /// are wired to the always-ready zero register and return kNoPreg.
  /// `rd` == 0 / kNoReg allocates nothing. Caller must check can_allocate()
  /// when rd is a real register.
  Renamed rename(u8 rd, u8 rs1, u8 rs2);

  /// Commit the oldest instruction's rename: its stale physical register
  /// returns to the free list.
  void commit(const Renamed& r);

  /// Roll a (not-yet-committed) rename back in reverse dispatch order:
  /// restore the previous mapping and free the young allocation.
  void rollback(u8 rd, const Renamed& r);

  /// Current mapping of an architectural register.
  u16 map(u8 arch) const { return rat_[arch & 31]; }

 private:
  std::vector<u16> rat_;        // arch -> phys
  std::vector<u16> free_list_;  // LIFO free pool
};

}  // namespace fg::boom
