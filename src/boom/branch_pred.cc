#include "src/boom/branch_pred.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fg::boom {

BranchPredictor::BranchPredictor(const PredictorConfig& cfg) : cfg_(cfg) {
  FG_CHECK(is_pow2(cfg_.bimodal_entries));
  FG_CHECK(is_pow2(cfg_.tage_entries));
  FG_CHECK(is_pow2(cfg_.btb_entries));
  bimodal_.assign(cfg_.bimodal_entries, 0);
  tables_.resize(cfg_.tage_tables);
  history_lengths_.resize(cfg_.tage_tables);
  // Geometric history lengths from min to max (2, 5, 10, 19, 34, 64 for the
  // default configuration).
  for (u32 t = 0; t < cfg_.tage_tables; ++t) {
    const double ratio = static_cast<double>(cfg_.max_history) / cfg_.min_history;
    const double len =
        cfg_.min_history *
        std::pow(ratio, static_cast<double>(t) / std::max<u32>(1, cfg_.tage_tables - 1));
    history_lengths_[t] = std::max<u32>(cfg_.min_history, static_cast<u32>(len + 0.5));
    tables_[t].assign(cfg_.tage_entries, TageEntry{});
  }
  btb_.assign(cfg_.btb_entries, BtbEntry{});
  ras_.assign(cfg_.ras_entries, 0);
  idx_bits_ = log2_exact(cfg_.tage_entries);
}

u64 BranchPredictor::folded_history(u32 bits, u32 fold_to) const {
  u64 h = bits >= 64 ? ghr_ : (ghr_ & ((u64{1} << bits) - 1));
  // XOR-fold the masked history into `fold_to` bits with a shift-XOR
  // cascade: O(log(bits/fold_to)) instead of one loop iteration per chunk,
  // and bit-identical (XOR of aligned chunks is associative).
  u32 span = fold_to;
  while (span < bits) span <<= 1;
  for (span >>= 1; span >= fold_to; span >>= 1) h ^= h >> span;
  return h & ((u64{1} << fold_to) - 1);
}

u32 BranchPredictor::table_index(u64 pc, u32 table) const {
  const u32 idx_bits = idx_bits_;  // log2(tage_entries), cached
  const u64 h = folded_history(history_lengths_[table], idx_bits);
  return static_cast<u32>((pc >> 2) ^ (pc >> (idx_bits + 2)) ^ h ^ (table * salt_)) &
         (cfg_.tage_entries - 1);
}

u16 BranchPredictor::table_tag(u64 pc, u32 table) const {
  const u64 h = folded_history(history_lengths_[table], 8);
  return static_cast<u16>(((pc >> 2) ^ (h << 1) ^ (table * 0x85ebca6bu)) & 0xff);
}

bool BranchPredictor::btb_lookup_update(u64 pc, u64 target) {
  ++stats_.btb_lookups;
  BtbEntry& e = btb_[(pc >> 2) & (cfg_.btb_entries - 1)];
  const bool hit = e.valid && e.pc == pc && e.target == target;
  if (!hit) ++stats_.btb_misses;
  e = {pc, target, true};
  return hit;
}

bool BranchPredictor::predict_cond(u64 pc, bool taken, u64 target) {
  ++stats_.cond_lookups;

  // Provider = longest-history tagged table that matches; fall back to
  // bimodal.
  int provider = -1;
  u32 pidx = 0;
  for (int t = static_cast<int>(cfg_.tage_tables) - 1; t >= 0; --t) {
    const u32 idx = table_index(pc, static_cast<u32>(t));
    const TageEntry& e = tables_[static_cast<size_t>(t)][idx];
    if (e.valid && e.tag == table_tag(pc, static_cast<u32>(t))) {
      provider = t;
      pidx = idx;
      break;
    }
  }

  const u32 bidx = static_cast<u32>(pc >> 2) & (cfg_.bimodal_entries - 1);
  bool pred;
  if (provider >= 0) {
    pred = tables_[static_cast<size_t>(provider)][pidx].ctr >= 0;
  } else {
    pred = bimodal_[bidx] >= 0;
  }

  bool correct = (pred == taken);
  // A correctly predicted taken branch still needs the target from the BTB.
  if (correct && taken) {
    correct = btb_lookup_update(pc, target);
  } else if (taken) {
    btb_lookup_update(pc, target);
  }

  // Update provider (or bimodal).
  auto bump = [](i8& c, bool up, i8 lo, i8 hi) {
    c = static_cast<i8>(std::clamp<int>(c + (up ? 1 : -1), lo, hi));
  };
  if (provider >= 0) {
    TageEntry& e = tables_[static_cast<size_t>(provider)][pidx];
    bump(e.ctr, taken, -4, 3);
    if (pred == taken && e.useful < 3) ++e.useful;
  } else {
    bump(bimodal_[bidx], taken, -2, 1);
  }

  // On a direction mispredict, allocate in a longer-history table.
  if (pred != taken) {
    for (u32 t = static_cast<u32>(provider + 1); t < cfg_.tage_tables; ++t) {
      const u32 idx = table_index(pc, t);
      TageEntry& e = tables_[t][idx];
      if (!e.valid || e.useful == 0) {
        e.valid = true;
        e.tag = table_tag(pc, t);
        e.ctr = taken ? 0 : -1;
        e.useful = 0;
        break;
      }
      if (e.useful > 0) --e.useful;
    }
    ++stats_.cond_mispredicts;
  } else if (!correct) {
    ++stats_.cond_mispredicts;  // right direction, wrong/absent target
  }

  ghr_ = (ghr_ << 1) | (taken ? 1 : 0);
  return correct;
}

bool BranchPredictor::predict_direct(u64 pc, u64 target) {
  return btb_lookup_update(pc, target);
}

bool BranchPredictor::predict_indirect(u64 pc, u64 target) {
  const bool hit = btb_lookup_update(pc, target);
  ghr_ = (ghr_ << 1) | 1;
  return hit;
}

void BranchPredictor::push_ras(u64 return_pc) {
  ras_top_ = (ras_top_ + 1) % cfg_.ras_entries;
  ras_[ras_top_] = return_pc;
  if (ras_count_ < cfg_.ras_entries) ++ras_count_;
}

bool BranchPredictor::predict_ret(u64 target) {
  if (ras_count_ == 0) {
    ++stats_.ras_mispredicts;
    return false;
  }
  const u64 predicted = ras_[ras_top_];
  ras_top_ = (ras_top_ + cfg_.ras_entries - 1) % cfg_.ras_entries;
  --ras_count_;
  if (predicted != target) {
    ++stats_.ras_mispredicts;
    return false;
  }
  return true;
}

}  // namespace fg::boom
