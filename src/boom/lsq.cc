#include "src/boom/lsq.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::boom {

void LoadStoreQueues::dispatch_store(u64 addr, u8 size, Cycle data_ready,
                                     u64 seq) {
  FG_CHECK(!stq_full());
  stq_.push_back({addr, size, data_ready, seq});
  ++stats_.stores;
}

LoadPlan LoadStoreQueues::dispatch_load(u64 addr, u8 size, Cycle start) {
  ++stats_.loads;
  LoadPlan plan;
  plan.earliest_start = start;
  if (!cfg_.store_load_forwarding) return plan;
  // Scan younger→older is irrelevant here: the trace is in program order and
  // the queue holds only older stores, so the *youngest matching* store (the
  // back-most) supplies the data.
  for (auto it = stq_.rbegin(); it != stq_.rend(); ++it) {
    if (contains(*it, addr, size)) {
      plan.forwarded = true;
      plan.earliest_start =
          std::max(start, it->data_ready) + cfg_.forward_latency;
      ++stats_.forwards;
      return plan;
    }
    if (overlaps(*it, addr, size)) {
      // Partial overlap: wait for the store's data, then access memory
      // normally (conservative, replay-free).
      plan.earliest_start = std::max(start, it->data_ready + 1);
      ++stats_.partial_stalls;
      return plan;
    }
  }
  return plan;
}

void LoadStoreQueues::commit_load() {
  FG_CHECK(ldq_used_ > 0);
  --ldq_used_;
}

void LoadStoreQueues::commit_store() {
  FG_CHECK(!stq_.empty());
  last_committed_store_addr_ = stq_.front().addr;
  stq_.pop_front();
}

}  // namespace fg::boom
