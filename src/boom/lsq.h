// Load/store queues with store-to-load forwarding and memory-dependence
// ordering.
//
// The base core model accounts LDQ/STQ occupancy only (Table II structure
// sizes); this module adds the dataflow the paper's bypass circuits sit next
// to: in-flight stores hold their address/data until commit, a younger load
// that fully overlaps an older store's bytes takes the data from the STQ
// (forwarding latency instead of a cache access), and a partial overlap
// forces the load to wait until the store drains (the conservative
// replay-free policy BOOM uses for misaligned overlap). FireGuard's LSQ/STQ
// bypass reads "the tops of these queues" at commit (paper footnote 3) —
// exposed here as `committed_top`.
#pragma once

#include <deque>
#include <optional>

#include "src/common/types.h"

namespace fg::boom {

struct LsqConfig {
  u32 ldq_entries = 32;
  u32 stq_entries = 32;
  bool store_load_forwarding = true;
  u32 forward_latency = 1;  // STQ read + bypass mux
};

struct LsqStats {
  u64 loads = 0;
  u64 stores = 0;
  u64 forwards = 0;         // loads served from the STQ
  u64 partial_stalls = 0;   // loads delayed by partial overlap
};

/// What a dispatched load should do.
struct LoadPlan {
  bool forwarded = false;    // take data from the STQ
  Cycle earliest_start = 0;  // ordering constraint (partial overlaps)
};

class LoadStoreQueues {
 public:
  explicit LoadStoreQueues(const LsqConfig& cfg) : cfg_(cfg) {}

  bool ldq_full() const { return ldq_used_ >= cfg_.ldq_entries; }
  bool stq_full() const { return stq_.size() >= cfg_.stq_entries; }
  u32 ldq_used() const { return ldq_used_; }
  u32 stq_used() const { return static_cast<u32>(stq_.size()); }

  /// Dispatch a store: occupies an STQ slot until commit. `data_ready` is
  /// when its data operand is available (forwardable from then on).
  void dispatch_store(u64 addr, u8 size, Cycle data_ready, u64 seq);

  /// Dispatch a load against the current STQ contents.
  LoadPlan dispatch_load(u64 addr, u8 size, Cycle start);
  void note_load_dispatched() { ++ldq_used_; }

  /// Commit events free the queue heads (in program order).
  void commit_load();
  void commit_store();

  /// The STQ head (most recently committed store data lives here one more
  /// cycle) — the paper's bypass point for store addresses.
  std::optional<u64> committed_top() const {
    return last_committed_store_addr_;
  }

  const LsqStats& stats() const { return stats_; }
  const LsqConfig& config() const { return cfg_; }

 private:
  struct StoreEntry {
    u64 addr = 0;
    u8 size = 0;
    Cycle data_ready = 0;
    u64 seq = 0;
  };

  static bool contains(const StoreEntry& st, u64 addr, u8 size) {
    return st.addr <= addr && addr + size <= st.addr + st.size;
  }
  static bool overlaps(const StoreEntry& st, u64 addr, u8 size) {
    return st.addr < addr + size && addr < st.addr + st.size;
  }

  LsqConfig cfg_;
  std::deque<StoreEntry> stq_;  // program order, front = oldest
  u32 ldq_used_ = 0;
  std::optional<u64> last_committed_store_addr_;
  LsqStats stats_;
};

}  // namespace fg::boom
