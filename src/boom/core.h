// Trace-driven cycle model of a 4-wide out-of-order superscalar core in the
// SonicBOOM configuration of Table II:
//
//   128-entry ROB, 96-entry issue queue, 32-entry LDQ/STQ, 128 physical
//   registers, 2 integer ALUs, 1 FP/mul/div unit, 2 memory pipes, 1 jump
//   unit, 1 CSR unit, TAGE branch prediction, and the Table II cache
//   hierarchy.
//
// The model is timestamp-based: at dispatch each instruction's execution
// start/completion times are computed from operand readiness, functional-unit
// availability and memory latency; the reorder buffer then retires
// instructions in order, up to commit-width per cycle. FireGuard attaches at
// exactly the point the paper instruments the real BOOM: the commit stage. A
// CommitSink can refuse a commit lane (its mini-filter FIFO is full), which
// stalls the core — this is the *only* mechanism by which monitoring slows
// the main core down, plus modeled PRF read-port contention.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "src/boom/branch_pred.h"
#include "src/boom/lsq.h"
#include "src/boom/rename.h"
#include "src/common/ring_queue.h"
#include "src/common/types.h"
#include "src/mem/hierarchy.h"
#include "src/trace/trace.h"

namespace fg::boom {

struct CoreConfig {
  u32 fetch_width = 4;
  u32 commit_width = 4;
  u32 rob_entries = 128;
  u32 iq_entries = 96;
  u32 ldq_entries = 32;
  u32 stq_entries = 32;
  u32 phys_regs = 128;

  u32 n_int_alu = 2;
  u32 n_fp = 1;  // shared FP / mul / div unit
  u32 n_mem = 2;
  u32 n_jmp = 1;
  u32 n_csr = 1;

  u32 lat_int = 1;
  u32 lat_mul = 3;
  u32 lat_div = 12;
  u32 lat_fp = 3;
  u32 lat_fp_muldiv = 8;
  u32 lat_jmp = 1;

  u32 front_depth = 6;         // fetch→dispatch pipeline depth
  u32 redirect_penalty = 8;    // extra cycles to refill after a mispredict
  u32 btb_bubble = 2;          // short bubble for a BTB-missing direct branch

  /// Store-to-load forwarding in the LSQ. Off by default: the paper's
  /// reproduction was calibrated without it; the ablation bench and the LSQ
  /// unit tests exercise it.
  bool store_load_forwarding = false;
  u32 stlf_latency = 1;

  PredictorConfig predictor{};
};

/// Interface by which FireGuard observes (and can stall) the commit stage.
class CommitSink {
 public:
  virtual ~CommitSink() = default;

  /// May lane `lane` retire instruction `ti` this cycle? Returning false
  /// stalls this and all younger lanes (commit is in order).
  virtual bool can_commit(u32 lane, const trace::TraceInst& ti) = 0;

  /// Lane `lane` retired `ti` at cycle `now`.
  virtual void on_commit(u32 lane, const trace::TraceInst& ti, Cycle now) = 0;

  /// Number of PRF read ports the sink preempts this cycle (data-forwarding
  /// channel reads of committed operand data; Figure 2's added contention).
  virtual u32 prf_ports_preempted() = 0;
};

struct CoreStats {
  u64 cycles = 0;
  u64 committed = 0;
  u64 commit_stall_fireguard = 0;  // commit-lane stalls caused by the sink
  u64 commit_stall_empty = 0;      // nothing ready to retire
  u64 dispatch_stall_rob = 0;
  u64 dispatch_stall_iq = 0;
  u64 dispatch_stall_lsq = 0;
  u64 dispatch_stall_pregs = 0;
  u64 mispredicts = 0;
  u64 prf_contention_delays = 0;
  u64 stlf_forwards = 0;  // loads served from the store queue
  double ipc() const {
    return cycles ? static_cast<double>(committed) / static_cast<double>(cycles) : 0.0;
  }
};

class BoomCore {
 public:
  BoomCore(const CoreConfig& cfg, mem::MemHierarchy& mem, trace::TraceSource& src);

  /// Advance one core cycle. `sink` may be null (baseline, no monitoring).
  /// Returns true if the cycle changed state beyond per-cycle stall
  /// counters: a commit, a dispatch, a trace fetch, a sink refusal, or an
  /// applied PRF-port preemption. A false return means the core is at a
  /// fixed point: every subsequent cycle up to `next_event()` is provably
  /// identical, so the scheduler may `skip_to` it in one step.
  bool tick(CommitSink* sink);

  /// Statically-typed variant of `tick` for the per-commit hot path: when
  /// `Sink` is a final class the three sink calls per commit lane
  /// (can_commit / on_commit / prf_ports_preempted) devirtualize and can
  /// inline, which removes the indirect call from every committed
  /// instruction. Semantically identical to `tick(sink)`.
  template <typename Sink>
  bool tick_t(Sink* sink) {
    active_ = false;
    dispatch_block_ = DispatchBlock::kNone;
    do_commit_t(sink);
    do_dispatch(nullptr);
    ++now_;
    ++stats_.cycles;
    return active_;
  }

  /// Earliest cycle at which `tick` could make progress again. Only
  /// meaningful immediately after a `tick` that returned false; kNoEvent
  /// means the core will never progress again (trace done, ROB empty).
  /// Horizons are conservative lower bounds: stepping at the returned cycle
  /// re-evaluates the real state.
  Cycle next_event() const;

  /// Bulk-advance over cycles proven dead by `next_event()`, charging the
  /// exact per-cycle stall counters the stepped loop would have charged
  /// (commit_stall_empty every cycle, plus the dispatch stall recorded by
  /// the fixed-point tick). Pre: the last tick returned false and
  /// `target <= next_event()`.
  void skip_to(Cycle target);

  /// True once the trace is exhausted and the ROB has drained.
  bool done() const { return trace_done_ && rob_.empty(); }

  Cycle now() const { return now_; }
  const CoreStats& stats() const { return stats_; }
  const BranchPredictor& predictor() const { return pred_; }
  const RenameStage& rename() const { return rename_; }
  const LoadStoreQueues& lsq() const { return lsq_; }

  /// Run to completion (baseline convenience). Returns total cycles.
  Cycle run_to_end(CommitSink* sink = nullptr, u64 max_cycles = ~u64{0});

  /// Mark the cycle at which the k-th instruction commits (the measurement
  /// window starts there; earlier instructions warm predictors and caches).
  void set_warmup_mark(u64 committed_insts) { warmup_target_ = committed_insts; }
  Cycle warmup_cycle() const { return warmup_cycle_; }
  /// Cycles spent after the warmup mark.
  Cycle measured_cycles() const {
    return now_ > warmup_cycle_ ? now_ - warmup_cycle_ : now_;
  }

 private:
  struct RobEntry {
    trace::TraceInst inst;
    Renamed ren;  // physical registers; stale preg freed at commit
    Cycle done_at = 0;
    bool has_dst = false;
    bool is_load = false;
    bool is_store = false;
  };

  /// Why the fixed-point tick's dispatch stage stopped — determines which
  /// stall counter a skipped cycle charges and which horizon unblocks it.
  enum class DispatchBlock : u8 {
    kNone,           // dispatched something (tick was active)
    kTraceDone,      // nothing left to fetch
    kFrontendReady,  // redirect/i-cache refill: unblocks at frontend_ready_
    kRobFull,        // unblocks when the ROB head completes (commit horizon)
    kIqFull,         // unblocks at iq_release_.top()
    kLsqFull,        // unblocks at commit (LSQ entries free at commit)
    kPregs,          // unblocks at commit (stale pregs free at commit)
  };

  template <typename Sink>
  void do_commit_t(Sink* sink);
  void do_dispatch(CommitSink* sink);
  bool fetch_next();
  Cycle* fu_pick(std::vector<Cycle>& units);
  u32 exec_latency_class(const trace::TraceInst& ti) const;

  CoreConfig cfg_;
  mem::MemHierarchy& mem_;
  trace::TraceSource& src_;
  BranchPredictor pred_;

  Cycle now_ = 0;
  RingQueue<RobEntry> rob_;
  RenameStage rename_;
  LoadStoreQueues lsq_;
  u64 mem_seq_ = 0;  // dispatch order of memory operations (LSQ dependence)

  // Issue-queue occupancy: entries leave the IQ when execution starts.
  // Stored unsorted: pushes are O(1) on the per-instruction hot path, and
  // the set only has to be walked when the IQ is actually full (drain all
  // releases <= now) — the same entries a sorted structure would pop.
  std::vector<Cycle> iq_release_;

  // Per-class FU next-free times.
  std::vector<Cycle> fu_int_;
  std::vector<Cycle> fu_fp_;
  std::vector<Cycle> fu_mem_;
  std::vector<Cycle> fu_jmp_;
  std::vector<Cycle> fu_csr_;

  // Physical-register ready times (written at schedule, read via the RAT).
  std::vector<Cycle> preg_ready_;

  // Frontend state.
  trace::TraceInst pending_{};
  bool have_pending_ = false;
  bool trace_done_ = false;
  Cycle frontend_ready_ = 0;  // earliest dispatch cycle for the next inst
  u64 cur_fetch_line_ = ~u64{0};

  u64 warmup_target_ = 0;
  Cycle warmup_cycle_ = 0;

  // Fixed-point bookkeeping for the event-driven scheduler (see tick()).
  bool active_ = true;
  DispatchBlock dispatch_block_ = DispatchBlock::kNone;
  Cycle iq_next_release_ = 0;  // earliest pending release after an IQ-full drain

  CoreStats stats_;
};

// Defined in the header so tick_t's concrete instantiations (e.g. the SoC,
// which is final) see the body and devirtualize the sink calls.
template <typename Sink>
void BoomCore::do_commit_t(Sink* sink) {
  // Model PRF read-port contention from the data-forwarding channel: each
  // port the sink preempts this cycle delays one integer-FU availability by
  // a cycle (Figure 2 d: Mini-Filter[x] has priority on Read_Ctrl[x]).
  if (sink != nullptr) {
    const u32 preempted = sink->prf_ports_preempted();
    if (preempted != 0) active_ = true;  // FU free times move: not a fixed point
    for (u32 i = 0; i < preempted && i < fu_int_.size(); ++i) {
      // The preempted read port pushes the next issue on this pipe back by
      // one cycle ("an instruction attempting to use the same port will be
      // delayed until the next cycle").
      Cycle& next_free = fu_int_[i];
      next_free = std::max(next_free, now_) + 1;
      ++stats_.prf_contention_delays;
    }
  }

  for (u32 lane = 0; lane < cfg_.commit_width; ++lane) {
    if (rob_.empty()) {
      ++stats_.commit_stall_empty;
      return;
    }
    RobEntry& head = rob_.front();
    if (head.done_at > now_) {
      ++stats_.commit_stall_empty;
      return;
    }
    if (sink != nullptr && !sink->can_commit(lane, head.inst)) {
      ++stats_.commit_stall_fireguard;
      // The refusal itself mutates sink-side stall attribution every cycle,
      // so a refused commit can never be skipped over.
      active_ = true;
      return;  // in-order commit: younger lanes stall too
    }
    if (head.is_load) lsq_.commit_load();
    if (head.is_store) lsq_.commit_store();
    rename_.commit(head.ren);
    if (sink != nullptr) sink->on_commit(lane, head.inst, now_);
    ++stats_.committed;
    if (stats_.committed == warmup_target_) warmup_cycle_ = now_;
    rob_.pop();
    active_ = true;
  }
}

}  // namespace fg::boom
