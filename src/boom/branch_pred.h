// Branch prediction for the main core, per Table II of the paper:
// TAGE (6 tagged tables, 2..64-bit history) over a bimodal base, a 256-entry
// BTB for taken-target prediction, and a 32-entry return-address stack.
#pragma once

#include <array>
#include <vector>

#include "src/common/types.h"

namespace fg::boom {

struct PredictorConfig {
  u32 bimodal_entries = 4096;
  u32 tage_tables = 6;
  u32 tage_entries = 512;   // per tagged table
  u32 min_history = 2;
  u32 max_history = 64;
  u32 btb_entries = 256;
  u32 ras_entries = 32;
};

struct PredictorStats {
  u64 cond_lookups = 0;
  u64 cond_mispredicts = 0;
  u64 btb_lookups = 0;
  u64 btb_misses = 0;
  u64 ras_mispredicts = 0;
  double cond_accuracy() const {
    return cond_lookups ? 1.0 - static_cast<double>(cond_mispredicts) /
                                    static_cast<double>(cond_lookups)
                        : 1.0;
  }
};

/// TAGE conditional predictor with BTB and RAS. The caller drives it with
/// actual outcomes from the trace; the predictor reports whether the
/// prediction would have been correct (the core charges redirect penalties
/// for mispredictions).
class BranchPredictor {
 public:
  explicit BranchPredictor(const PredictorConfig& cfg = {});

  /// Predict + update a conditional branch; returns true if predicted
  /// correctly (direction and, when taken, BTB target).
  bool predict_cond(u64 pc, bool taken, u64 target);

  /// Direct unconditional jump/call: target known at decode; returns true if
  /// the BTB had the target (otherwise a short fetch bubble, not a full
  /// mispredict).
  bool predict_direct(u64 pc, u64 target);

  /// Indirect jump/call via the BTB; returns true if predicted correctly.
  bool predict_indirect(u64 pc, u64 target);

  /// Call: push the return address onto the RAS.
  void push_ras(u64 return_pc);

  /// Return: pop and compare; returns true if the RAS had the right target.
  bool predict_ret(u64 target);

  const PredictorStats& stats() const { return stats_; }

 private:
  struct TageEntry {
    u16 tag = 0;
    i8 ctr = 0;      // signed 3-bit counter (-4..3); >= 0 predicts taken
    u8 useful = 0;
    bool valid = false;
  };

  u32 table_index(u64 pc, u32 table) const;
  u16 table_tag(u64 pc, u32 table) const;
  u64 folded_history(u32 bits, u32 fold_to) const;

  PredictorConfig cfg_;
  std::vector<i8> bimodal_;                    // 2-bit counters (-2..1)
  std::vector<std::vector<TageEntry>> tables_;
  std::vector<u32> history_lengths_;
  u64 ghr_ = 0;  // 64-bit global history

  struct BtbEntry {
    u64 pc = 0;
    u64 target = 0;
    bool valid = false;
  };
  std::vector<BtbEntry> btb_;
  bool btb_lookup_update(u64 pc, u64 target);

  std::vector<u64> ras_;
  u32 ras_top_ = 0;
  u32 ras_count_ = 0;

  PredictorStats stats_;
  u64 salt_ = 0x9e3779b9u;
  u32 idx_bits_ = 0;  // log2(tage_entries), cached off the hot index path
};

}  // namespace fg::boom
