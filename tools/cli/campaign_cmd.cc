// `fgsim campaign`: run a sweep grid against a durable content-addressed
// result store. Crash-safe and resumable: kill the process at any instant
// (Ctrl-C, SIGKILL, power cut) and rerunning the same command serves every
// already-published point from the store and simulates only the rest — the
// final result set is bit-identical to an uninterrupted run.
//
//   $ fgsim campaign --spec grid.json --store runs/grid
//   $ fgsim campaign --spec grid.json --store runs/grid --json out.json
//   $ fgsim campaign --store runs/grid --audit        # validate every entry
//
// Per-point robustness: each point runs in its own forked child (a crash or
// hang costs one attempt, not the campaign), a --timeout watchdog SIGKILLs
// hung points, and failed attempts retry with exponential backoff up to
// --max-attempts. See src/api/campaign.h for the full contract and
// src/store/faultfs.h (FG_FAULT) for the fault-injection harness that
// tests it.
//
// Exit codes (the cli.h contract): 0 all points resolved; 1 at least one
// failed point or audit finding; 2 usage/malformed spec; 3 unusable store
// or unwritable output.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/campaign.h"
#include "src/common/stats.h"
#include "tools/cli/cli.h"

namespace fg::cli {

namespace {

void usage() {
  std::puts(
      "fgsim campaign — resumable sweep against a durable result store\n"
      "  --spec FILE         ExperimentSpec JSON (usually with sweep axes)\n"
      "  --store DIR         result store directory (created if absent)\n"
      "  --set KEY=VALUE     override a knob before expansion (repeatable)\n"
      "  --jobs=N            concurrent points (default FG_JOBS, else hw)\n"
      "  --max-attempts=N    attempts per point before it counts as failed "
      "(default 3)\n"
      "  --timeout=SECS      per-point wall-clock watchdog (default off)\n"
      "  --backoff-ms=N      base retry backoff, doubled per attempt "
      "(default 50)\n"
      "  --in-process        worker threads instead of forked children "
      "(no crash/hang isolation)\n"
      "  --no-baseline       skip the unmonitored baseline / slowdown\n"
      "  --json PATH         write all stored outcomes as a JSON array\n"
      "  --quiet             suppress per-point progress lines\n"
      "  --audit             validate every store entry (checksums, "
      "addresses), then exit");
}

}  // namespace

int campaign_main(int argc, char** argv) {
  std::string spec_path;
  std::string json_out;
  std::vector<std::pair<std::string, std::string>> sets;
  api::CampaignConfig cfg;
  bool quiet = false;
  bool audit = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fgsim campaign: %s needs a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return kExitOk;
    } else if (arg == "--spec") {
      spec_path = next("--spec");
    } else if (arg.rfind("--spec=", 0) == 0) {
      spec_path = arg.substr(7);
    } else if (arg == "--store") {
      cfg.store_dir = next("--store");
    } else if (arg.rfind("--store=", 0) == 0) {
      cfg.store_dir = arg.substr(8);
    } else if (arg == "--set") {
      const std::string v = next("--set");
      const size_t eq = v.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "fgsim campaign: --set expects KEY=VALUE\n");
        return kExitUsage;
      }
      sets.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      cfg.jobs = static_cast<u32>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--max-attempts=", 0) == 0) {
      cfg.max_attempts =
          static_cast<u32>(std::strtoul(arg.c_str() + 15, nullptr, 10));
      if (cfg.max_attempts == 0) {
        std::fprintf(stderr, "fgsim campaign: --max-attempts must be >= 1\n");
        return kExitUsage;
      }
    } else if (arg.rfind("--timeout=", 0) == 0) {
      cfg.point_timeout_s = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--backoff-ms=", 0) == 0) {
      cfg.backoff_ms = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--in-process") {
      cfg.isolate = false;
    } else if (arg == "--no-baseline") {
      cfg.with_baseline = false;
    } else if (arg == "--json") {
      json_out = next("--json");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--audit") {
      audit = true;
    } else {
      std::fprintf(stderr,
                   "fgsim campaign: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return kExitUsage;
    }
  }

  if (cfg.store_dir.empty()) {
    std::fprintf(stderr, "fgsim campaign: --store DIR is required\n");
    return kExitUsage;
  }

  if (audit) {
    store::ResultStore store;
    std::string err;
    if (!store.open(cfg.store_dir, &err)) {
      std::fprintf(stderr, "fgsim campaign: %s\n", err.c_str());
      return kExitIo;
    }
    store::ResultStore::AuditReport report;
    if (!store.audit(&report, &err)) {
      std::fprintf(stderr, "fgsim campaign: %s\n", err.c_str());
      return kExitIo;
    }
    std::printf(
        "store audit: %llu entries, %llu ok, %llu quarantined\n",
        static_cast<unsigned long long>(report.entries),
        static_cast<unsigned long long>(report.ok),
        static_cast<unsigned long long>(report.quarantined));
    if (report.quarantined > 0) {
      std::fprintf(stderr,
                   "fgsim campaign: audit quarantined %llu corrupt "
                   "entries (see %s)\n",
                   static_cast<unsigned long long>(report.quarantined),
                   store.quarantine_dir().c_str());
      return kExitFailure;
    }
    return kExitOk;
  }

  if (spec_path.empty()) {
    std::fprintf(stderr, "fgsim campaign: --spec FILE is required\n");
    return kExitUsage;
  }
  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "fgsim campaign: cannot read %s\n",
                 spec_path.c_str());
    return kExitIo;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  api::ExperimentSpec spec;
  std::string err;
  if (!api::spec_from_json(ss.str(), &spec, &err)) {
    std::fprintf(stderr, "fgsim campaign: %s: %s\n", spec_path.c_str(),
                 err.c_str());
    return kExitUsage;
  }
  for (const auto& [key, value] : sets) {
    if (!api::apply_set(&spec, key, value, &err)) {
      std::fprintf(stderr, "fgsim campaign: %s\n", err.c_str());
      return kExitUsage;
    }
  }

  api::CampaignRunner runner(std::move(spec), cfg);
  if (!runner.init(&err)) {
    // Grid expansion failures are spec errors; everything else init does is
    // store/journal I/O.
    const bool spec_error = err.find("sweep") != std::string::npos ||
                            err.find("axis") != std::string::npos;
    std::fprintf(stderr, "fgsim campaign: %s\n", err.c_str());
    return spec_error ? kExitUsage : kExitIo;
  }
  std::printf("fgsim campaign: %zu points on %u %s, store %s\n",
              runner.points().size(), runner.workers(),
              cfg.isolate ? "isolated workers" : "threads",
              cfg.store_dir.c_str());
  if (!quiet) {
    runner.on_event([](const api::CampaignRunner::Event& ev) {
      std::printf("  [%3zu/%zu] point %-4u %s%s\n", ev.completed, ev.total,
                  ev.index, ev.what,
                  ev.attempt > 0 ? (" (attempt " + std::to_string(ev.attempt + 1) + ")").c_str()
                                 : "");
      std::fflush(stdout);
    });
  }
  if (!runner.run(&err)) {
    std::fprintf(stderr, "fgsim campaign: %s\n", err.c_str());
    return kExitIo;
  }

  const api::CampaignStats& st = runner.stats();
  std::printf(
      "campaign done: %zu points — %zu from store, %zu executed, %zu "
      "retries, %zu timeouts, %zu failed\n",
      st.points, st.from_store, st.executed, st.retries, st.timeouts,
      st.failed);

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "fgsim campaign: cannot write %s\n",
                   json_out.c_str());
      return kExitIo;
    }
    const std::vector<std::string>& payloads = runner.payloads();
    out << "[\n";
    bool first = true;
    for (const std::string& p : payloads) {
      if (p.empty()) continue;  // failed points export nothing
      if (!first) out << ",\n";
      out << p;
      first = false;
    }
    out << "\n]\n";
  }

  if (st.failed > 0) {
    std::fprintf(stderr, "fgsim campaign: %zu of %zu points failed\n",
                 st.failed, st.points);
    return kExitFailure;
  }
  return kExitOk;
}

}  // namespace fg::cli
