// `fgsim spec`: resolve and export a declarative ExperimentSpec.
//
//   $ fgsim spec                                  # the default (quickstart) spec
//   $ fgsim spec --set kernel=pmc --set engines=6 # resolved spec with overrides
//   $ fgsim spec --spec my.json --set seed=7      # file + overrides, re-exported
//   $ fgsim spec --keys                           # the --set knob reference
//   $ fgsim spec --schema                         # flattened JSON schema keys
//
// The export is complete and exact: feeding it back through `fgsim run
// --spec` reproduces the identical experiment bit for bit. --schema is the
// docs drift gate's input: every key must appear in docs/API.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "tools/cli/cli.h"

namespace fg::cli {

int spec_main(int argc, char** argv) {
  std::string spec_path;
  std::vector<std::pair<std::string, std::string>> sets;
  bool schema = false;
  bool keys = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fgsim spec: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::puts(
          "fgsim spec — resolve and print an ExperimentSpec\n"
          "  --spec FILE / --set KEY=VALUE   as in `fgsim run`\n"
          "  --keys                          list the --set knobs\n"
          "  --schema                        list the flattened JSON schema");
      return 0;
    } else if (arg == "--spec") {
      spec_path = next("--spec");
    } else if (arg.rfind("--spec=", 0) == 0) {
      spec_path = arg.substr(7);
    } else if (arg == "--set") {
      const std::string v = next("--set");
      const size_t eq = v.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "fgsim spec: --set expects KEY=VALUE\n");
        return 2;
      }
      sets.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg == "--schema") {
      schema = true;
    } else if (arg == "--keys") {
      keys = true;
    } else {
      std::fprintf(stderr, "fgsim spec: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (keys) {
    for (const auto& [key, help] : api::settable_keys()) {
      std::printf("%-20s %s\n", key.c_str(), help.c_str());
    }
    return 0;
  }
  if (schema) {
    for (const std::string& key : api::spec_schema_keys()) {
      std::puts(key.c_str());
    }
    return 0;
  }

  api::ExperimentSpec spec = api::default_spec();
  if (!spec_path.empty()) {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "fgsim spec: cannot read %s\n", spec_path.c_str());
      return kExitIo;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!api::spec_from_json(ss.str(), &spec, &err)) {
      std::fprintf(stderr, "fgsim spec: %s: %s\n", spec_path.c_str(),
                   err.c_str());
      return 2;
    }
  }
  for (const auto& [key, value] : sets) {
    std::string err;
    if (!api::apply_set(&spec, key, value, &err)) {
      std::fprintf(stderr, "fgsim spec: %s\n", err.c_str());
      return 2;
    }
  }
  std::printf("%s\n", api::spec_to_json(spec).c_str());
  return 0;
}

}  // namespace fg::cli
