// The fgsim command set.
//
// One binary, one surface: every subcommand consumes the declarative
// ExperimentSpec (src/api/spec.h) — from a --spec file, --set overrides, or
// legacy flags — and drives the SimSession facade. The historical binaries
// (fireguard-sim, simspeed, fgfuzz) are thin deprecated wrappers over these
// same entry points.
//
// Exit-code contract (uniform across subcommands, stable for scripts/CI):
//   0  success
//   1  experiment failure: missed attacks, failed campaign points, a
//      regression gate or store audit finding — the tool ran, the result is
//      bad
//   2  usage error: unknown option/command, malformed spec or --set value
//   3  I/O error: unreadable spec file, unwritable output/store path
// Every nonzero exit is accompanied by a one-line summary on stderr.
//
// Every *_main takes (argc, argv) with argv[0] being the FIRST ARGUMENT
// (program and subcommand names already stripped by the dispatcher).
#pragma once

namespace fg::cli {

// The exit-code contract above, by name.
inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitIo = 3;

/// `fgsim run`: one experiment, key-value summary on stdout.
/// Accepts --spec/--set plus the legacy fireguard-sim flag set.
int run_main(int argc, char** argv);

/// `fgsim sweep`: expand a spec's sweep axes and run the grid in parallel.
int sweep_main(int argc, char** argv);

/// `fgsim campaign`: run a sweep grid against a durable result store —
/// resumable after a crash/kill, with per-point isolation, watchdog, and
/// bounded retry.
int campaign_main(int argc, char** argv);

/// `fgsim spec`: resolve and print a spec (--schema / --keys for tooling).
int spec_main(int argc, char** argv);

/// `fgsim fuzz`: the differential scenario fuzzer + golden-corpus
/// maintainer (the fgfuzz CLI).
int fuzz_main(int argc, char** argv);

/// `fgsim speed`: the simulator-speed tracker (the simspeed CLI).
int speed_main(int argc, char** argv);

/// `fgsim serve`: the batch experiment daemon — durable store + Unix socket
/// + forked workers with store/in-flight dedupe and work stealing.
int serve_main(int argc, char** argv);

/// `fgsim submit`: send a spec to a running serve daemon (--wait blocks
/// until every point resolves).
int submit_main(int argc, char** argv);

/// `fgsim jobs`: list (or cancel) a serve daemon's submissions.
int jobs_main(int argc, char** argv);

/// `fgsim status`: a serve daemon's live counters (--drain / --shutdown).
int status_main(int argc, char** argv);

/// `fgsim store`: direct store inspection (stats: objects, bytes,
/// quarantine, full audit) — no daemon needed.
int store_main(int argc, char** argv);

}  // namespace fg::cli
