// Simulator-speed tracker: emits BENCH_sim_speed.json so the performance
// trajectory of the simulator itself is measured, not guessed.
//
// Measurements:
//  1. Single-thread hot-loop speed — simulated fast-domain cycles per wall
//     second (and committed instructions per second) for a light (PMC) and a
//     heavy (ASan) kernel deployment on blackscholes, plus the
//     memory/stall-bound memstall config (detailed DRAM + PTW). Each config
//     also runs under the stepped FG_CYCLE_EXACT reference loop (the ratio
//     is the event-driven scheduler's speedup) and under the two-thread
//     FG_PIPELINE epoch-pipelined scheduler (the ratio against the serial
//     event loop is pipeline_speedup). The three legs are timed best-of-3
//     INTERLEAVED — each round times every leg once — so one cold or
//     contended stretch cannot poison a single mode's trajectory; all
//     legs' RunResults must be bit-identical (a mismatch fails the tool).
//  2. The Figure-10 sweep grid executed serially (jobs=1) and with FG_JOBS
//     workers: wall clock for each, honest parallel speedup and efficiency.
//  3. A bit-identity audit: every parallel RunResult (cycles, committed,
//     detections, packets) must equal its serial counterpart, byte for byte.
//     A mismatch makes the tool exit non-zero.
//  4. A cycle-accounting report from the scheduler (stepped vs skipped
//     cycles, skip-length histogram, per-domain bounds) so future perf work
//     can see where simulated time goes.
//
// The JSON keeps a `runs` history: each invocation appends one compact
// record (carrying forward the records already in the file), so the
// checked-in file tracks the per-PR perf trajectory.
//
// Usage: simspeed [--quick] [--jobs=N] [--trace-len=N] [--out=PATH] [--check]
//   --quick      small trace (20k insts) and the PMC+ASan subset of the
//                fig10 grid — for CI and smoke runs
//   --jobs=N     parallel worker count (default: FG_JOBS env, else hw)
//   --trace-len  per-point trace length (default: FG_TRACE_LEN env / 150k)
//   --out=PATH   output JSON path (default: BENCH_sim_speed.json)
//   --check      CI gate: also fail (exit 1) if the parallel sweep is slower
//                than serial while real parallelism was available, or if
//                event_speedup_pmc fell below the checked-in trajectory
//                (best same-mode runs[] record, with a noise tolerance)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "tools/cli/cli.h"

#include "src/common/run_history.h"
#include "src/common/simctl.h"
#include "src/common/thread_pool.h"
#include "src/soc/figures.h"
#include "src/soc/sweep.h"
#include "src/store/faultfs.h"

namespace {

using namespace fg;

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

struct HotLoopSpeed {
  std::string name;
  double sim_cycles_per_sec = 0.0;
  double insts_per_sec = 0.0;
  double wall_ms = 0.0;
  double exact_cycles_per_sec = 0.0;  // FG_CYCLE_EXACT reference loop
  double event_speedup = 0.0;         // event-driven vs stepped
  double pipeline_cycles_per_sec = 0.0;  // FG_PIPELINE two-thread loop
  double pipeline_speedup = 0.0;         // pipelined vs serial event-driven
  bool exact_identical = true;
  bool pipeline_identical = true;
  soc::SchedStats sched{};
  soc::SchedStats pipe_sched{};
};

bool run_results_identical(const soc::RunResult& a, const soc::RunResult& b) {
  if (a.cycles != b.cycles) return false;
  if (a.committed != b.committed) return false;
  if (a.packets != b.packets) return false;
  if (a.spurious != b.spurious) return false;
  if (a.detections.size() != b.detections.size()) return false;
  for (size_t i = 0; i < a.detections.size(); ++i) {
    const soc::DetectionRecord& da = a.detections[i];
    const soc::DetectionRecord& db = b.detections[i];
    if (da.attack_id != db.attack_id || da.engine != db.engine ||
        da.commit_fast != db.commit_fast || da.detect_fast != db.detect_fast) {
      return false;
    }
  }
  for (size_t i = 0; i < a.stall_fractions.size(); ++i) {
    if (a.stall_fractions[i] != b.stall_fractions[i]) return false;
  }
  return true;
}

/// One timed run_fireguard under the current scheduler mode; returns wall ms.
double timed_run(const trace::WorkloadConfig& wl, const soc::SocConfig& sc,
                 soc::RunResult* r) {
  const double t0 = now_ms();
  *r = soc::run_fireguard(wl, sc);
  return now_ms() - t0;
}

HotLoopSpeed measure_hot_loop(const char* name, const trace::WorkloadConfig& wl,
                              const soc::SocConfig& sc) {
  HotLoopSpeed s;
  s.name = name;

  // Best-of-3 with the three scheduler modes INTERLEAVED: each round times
  // serial, exact, and pipelined once, and each leg keeps its minimum. A
  // contended or cold stretch of wall clock hits every leg of that round
  // equally instead of poisoning one mode's entire timing block — which is
  // exactly how a single bad run once recorded a 2.67x "speedup" in the
  // checked-in trajectory. Mode flags are restored afterwards (a user-set
  // FG_CYCLE_EXACT=1 / FG_PIPELINE=1 must still govern the sweep).
  constexpr int kRounds = 3;
  const bool entry_mode = cycle_exact();
  const bool entry_pipe = pipeline_enabled();
  soc::RunResult r, rx, rp;
  double exact_ms = 1e300, pipe_ms = 1e300;
  s.wall_ms = 1e300;
  for (int round = 0; round < kRounds; ++round) {
    set_cycle_exact(false);
    set_pipeline(false);
    s.wall_ms = std::min(s.wall_ms, timed_run(wl, sc, &r));
    set_cycle_exact(true);
    exact_ms = std::min(exact_ms, timed_run(wl, sc, &rx));
    set_cycle_exact(false);
    set_pipeline(true);
    pipe_ms = std::min(pipe_ms, timed_run(wl, sc, &rp));
    // Bit-identity is checked every round, not just once: a mode that is
    // only intermittently divergent must still fail the tool.
    if (!run_results_identical(r, rx)) s.exact_identical = false;
    if (!run_results_identical(r, rp)) s.pipeline_identical = false;
  }
  set_cycle_exact(entry_mode);
  set_pipeline(entry_pipe);

  s.sched = r.sched;
  s.pipe_sched = rp.sched;
  if (s.wall_ms > 0.0) {
    s.sim_cycles_per_sec = static_cast<double>(r.cycles) / (s.wall_ms / 1000.0);
    s.insts_per_sec = static_cast<double>(r.committed) / (s.wall_ms / 1000.0);
  }
  if (exact_ms > 0.0) {
    s.exact_cycles_per_sec =
        static_cast<double>(rx.cycles) / (exact_ms / 1000.0);
    s.event_speedup = exact_ms / s.wall_ms;
  }
  if (pipe_ms > 0.0) {
    s.pipeline_cycles_per_sec =
        static_cast<double>(rp.cycles) / (pipe_ms / 1000.0);
    s.pipeline_speedup = s.wall_ms / pipe_ms;
  }
  return s;
}

/// The Figure-10 grid, from the same definition bench_fig10_scalability
/// registers (src/soc/figures.cc) — the measured grid cannot drift from the
/// real one.
void add_fig10_grid(soc::SweepRunner& runner, u64 n_insts, bool quick) {
  for (soc::SweepPoint& p : soc::fig10_points(n_insts, quick)) {
    runner.add(std::move(p));
  }
}

bool results_identical(const soc::PointResult& a, const soc::PointResult& b) {
  if (a.baseline_cycles != b.baseline_cycles) return false;
  return run_results_identical(a.run, b.run);
}

void print_sched_report(const char* name, const soc::SchedStats& s) {
  std::printf(
      "sched %-14s: %llu stepped + %llu skipped cycles (%.1f%% skipped in "
      "%llu skips), slow ticks %llu run / %llu skipped\n",
      name, static_cast<unsigned long long>(s.cycles_stepped),
      static_cast<unsigned long long>(s.cycles_skipped),
      100.0 * s.skipped_fraction(), static_cast<unsigned long long>(s.skips),
      static_cast<unsigned long long>(s.slow_ticks_run),
      static_cast<unsigned long long>(s.slow_ticks_skipped));
  std::printf("      skip lengths [1,2-3,...,>=2048]:");
  for (const u64 h : s.skip_len_hist) {
    std::printf(" %llu", static_cast<unsigned long long>(h));
  }
  std::printf("  bounds core/slow/cap: %llu/%llu/%llu, drain windows %llu\n",
              static_cast<unsigned long long>(s.bound_core),
              static_cast<unsigned long long>(s.bound_slow),
              static_cast<unsigned long long>(s.bound_cap),
              static_cast<unsigned long long>(s.drain_windows));
}

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string* out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char small[1024];
  const int n = std::vsnprintf(small, sizeof(small), fmt, ap);
  va_end(ap);
  if (n < 0) return;
  if (static_cast<size_t>(n) < sizeof(small)) {
    out->append(small, static_cast<size_t>(n));
    return;
  }
  // Carried-forward histories can exceed the stack buffer.
  std::vector<char> big(static_cast<size_t>(n) + 1);
  va_start(ap, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, ap);
  va_end(ap);
  out->append(big.data(), static_cast<size_t>(n));
}

u64 arg_u64(const char* arg, const char* prefix, u64 fallback) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return fallback;
  return std::strtoull(arg + n, nullptr, 10);
}

}  // namespace

namespace fg::cli {

int speed_main(int argc, char** argv) {
  bool quick = false;
  bool check = false;
  u32 jobs = ThreadPool::default_jobs();
  u64 trace_len = soc::default_trace_len();
  std::string out_path = "BENCH_sim_speed.json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<u32>(arg_u64(argv[i], "--jobs=", jobs));
    } else if (std::strncmp(argv[i], "--trace-len=", 12) == 0) {
      trace_len = arg_u64(argv[i], "--trace-len=", trace_len);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: simspeed [--quick] [--jobs=N] [--trace-len=N] "
                   "[--out=PATH] [--check]\n");
      return 2;
    }
  }
  if (quick) trace_len = std::min<u64>(trace_len, 20'000);

  // History preflight BEFORE any measurement. The runs[] history is the
  // whole point of the checked-in JSON; under --check a missing, unreadable
  // or runs-less file is a CI misconfiguration that must fail loudly and
  // immediately (it used to exit 0 and silently start a fresh history), and
  // an unwritable output path must not be discovered only after minutes of
  // sweeping.
  std::string history;
  const HistoryStatus hist_status = load_runs_history(out_path, &history);
  if (check && hist_status != HistoryStatus::kOk) {
    std::fprintf(stderr,
                 "FAIL: --check requires an existing runs[] history at %s "
                 "(status: %s). Run once without --check to start a history, "
                 "or fix the path.\n",
                 out_path.c_str(), history_status_name(hist_status));
    return kExitIo;
  }
  if (check) {
    FILE* probe = std::fopen(out_path.c_str(), "r+");
    if (probe == nullptr) {
      std::fprintf(stderr, "FAIL: --check output path %s is not writable\n",
                   out_path.c_str());
      return kExitIo;
    }
    std::fclose(probe);
  }
  if (!check && hist_status == HistoryStatus::kMalformed) {
    // Recovery must be loud: the file exists but carries no runs[] history
    // (truncated write, merge damage). Quarantine the evidence and start
    // fresh rather than silently overwriting it.
    const std::string moved = quarantine_history(out_path);
    std::fprintf(stderr,
                 "WARNING: %s exists but has no runs[] history (corrupt?); "
                 "%s%s; starting a fresh history\n",
                 out_path.c_str(),
                 moved.empty() ? "could not move it aside"
                               : "moved it aside to ",
                 moved.c_str());
  }

  const u32 hw = std::max<u32>(1, std::thread::hardware_concurrency());
  std::printf("simspeed: trace_len=%llu jobs=%u (hw %u)%s\n",
              static_cast<unsigned long long>(trace_len), jobs, hw,
              quick ? " (quick)" : "");

  // 1) Single-thread hot-loop speed, event-driven vs stepped reference.
  // Three configs: a light (PMC) and a heavy (ASan) kernel deployment on
  // the compute-bound blackscholes trace, plus the memory/stall-bound
  // memstall config (detailed DRAM + PTW, serialized pointer chasing) —
  // the workload class the wide-horizon skip paths exist for, and the one
  // the `event_speedup >= 1.5` acceptance bar is measured on.
  std::vector<HotLoopSpeed> hot;
  {
    soc::SocConfig sc = soc::table2_soc();
    sc.kernels = {soc::deploy(kernels::KernelKind::kPmc, 4)};
    hot.push_back(measure_hot_loop(
        "pmc_4ucores", soc::paper_workload("blackscholes", trace_len), sc));
    sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
    hot.push_back(measure_hot_loop(
        "asan_4ucores", soc::paper_workload("blackscholes", trace_len), sc));
  }
  {
    soc::SocConfig sc = soc::memstall_soc();
    sc.kernels = {soc::deploy(kernels::KernelKind::kPmc, 4)};
    hot.push_back(measure_hot_loop("memstall_4ucores",
                                   soc::memstall_workload(trace_len), sc));
  }
  u32 mismatches = 0;
  for (const HotLoopSpeed& s : hot) {
    std::printf(
        "hot loop %-14s: %8.2f M sim-cycles/s (%.1f ms), exact %8.2f M "
        "(event speedup %.2fx) %s\n",
        s.name.c_str(), s.sim_cycles_per_sec / 1e6, s.wall_ms,
        s.exact_cycles_per_sec / 1e6, s.event_speedup,
        s.exact_identical ? "" : "EXACT-MISMATCH");
    const soc::SchedStats& ps = s.pipe_sched;
    std::printf(
        "      pipelined     : %8.2f M sim-cycles/s (pipeline speedup "
        "%.2fx), %llu epochs (%llu prereleased / %llu synced), spins "
        "fast %llu slow %llu %s\n",
        s.pipeline_cycles_per_sec / 1e6, s.pipeline_speedup,
        static_cast<unsigned long long>(ps.pipe_epochs),
        static_cast<unsigned long long>(ps.pipe_prereleased),
        static_cast<unsigned long long>(ps.pipe_synced),
        static_cast<unsigned long long>(ps.pipe_fast_spins),
        static_cast<unsigned long long>(ps.pipe_slow_spins),
        s.pipeline_identical ? "" : "PIPELINE-MISMATCH");
    print_sched_report(s.name.c_str(), s.sched);
    if (!s.exact_identical) ++mismatches;
    if (!s.pipeline_identical) ++mismatches;
  }

  // 2) Fig. 10 sweep, serial then parallel.
  soc::SweepRunner serial(soc::SweepConfig{1});
  add_fig10_grid(serial, trace_len, quick);
  serial.run_all();
  std::printf("fig10 sweep serial  : %zu points, %.2f s\n", serial.n_points(),
              serial.wall_ms() / 1000.0);

  soc::SweepRunner parallel(soc::SweepConfig{jobs});
  add_fig10_grid(parallel, trace_len, quick);
  parallel.run_all();
  // The runner is the single owner of the jobs→workers capping rule.
  const u32 effective_workers = parallel.workers();
  const double speedup = parallel.wall_ms() > 0.0
                             ? serial.wall_ms() / parallel.wall_ms()
                             : 0.0;
  const double efficiency =
      effective_workers > 0 ? speedup / effective_workers : 0.0;
  std::printf(
      "fig10 sweep parallel: %zu points on %u jobs (%u workers), %.2f s "
      "(speedup %.2fx, efficiency %.2f)\n",
      parallel.n_points(), jobs, effective_workers,
      parallel.wall_ms() / 1000.0, speedup, efficiency);
  std::printf(
      "baseline cache      : %llu hits, %llu misses, %llu in-flight waits\n",
      static_cast<unsigned long long>(parallel.baseline_cache().hits()),
      static_cast<unsigned long long>(parallel.baseline_cache().misses()),
      static_cast<unsigned long long>(
          parallel.baseline_cache().inflight_waits()));

  // 3) Bit-identity audit: parallel vs serial, point by point.
  for (u32 i = 0; i < parallel.n_points(); ++i) {
    if (!results_identical(serial.result(i), parallel.result(i))) {
      std::fprintf(stderr, "MISMATCH at point %s\n",
                   parallel.point(i).name.c_str());
      ++mismatches;
    }
  }
  std::printf("bit-identity audit  : %u mismatches over %zu points "
              "(parallel-vs-serial, event-vs-exact, pipelined-vs-serial)\n",
              mismatches, parallel.n_points());

  // Aggregate sweep-wide scheduler accounting.
  soc::SchedStats sweep_sched{};
  for (u32 i = 0; i < parallel.n_points(); ++i) {
    const soc::SchedStats& s = parallel.result(i).run.sched;
    sweep_sched.cycles_stepped += s.cycles_stepped;
    sweep_sched.cycles_skipped += s.cycles_skipped;
    sweep_sched.skips += s.skips;
    sweep_sched.slow_ticks_run += s.slow_ticks_run;
    sweep_sched.slow_ticks_skipped += s.slow_ticks_skipped;
    sweep_sched.drain_windows += s.drain_windows;
    sweep_sched.bound_core += s.bound_core;
    sweep_sched.bound_slow += s.bound_slow;
    sweep_sched.bound_cap += s.bound_cap;
    for (size_t b = 0; b < s.skip_len_hist.size(); ++b) {
      sweep_sched.skip_len_hist[b] += s.skip_len_hist[b];
    }
  }
  print_sched_report("fig10_sweep", sweep_sched);

  const bool bit_identical = mismatches == 0;
  // The parallel-regression gate only fires when parallelism was real: a
  // single-worker "parallel" run (1-core box) is serial plus noise.
  const bool parallel_regressed = effective_workers > 1 && speedup < 1.0;

  // Event-speedup trajectory gate: under --check, the measured
  // event_speedup_pmc may not fall below a tolerance of the best same-mode
  // (quick vs full) record in the checked-in history — the scheduler's
  // speedup trajectory only ratchets. Records that predate the field
  // (pre-v3) or ran the other mode are skipped, so the gate arms itself
  // only once a comparable record exists. The tolerance absorbs shared-CI
  // wall clock noise: even with best-of-5 timing the quick-mode ratio
  // (single-digit-millisecond loops) swings ~20% run-to-run on a loaded
  // box, and a real scheduler regression (skipping disabled, horizon gone
  // conservative) costs far more than 25% of the trajectory.
  constexpr double kSpeedupTolerance = 0.75;
  double best_prev_pmc = 0.0;
  for (const std::string& rec : split_run_records(history)) {
    bool rec_quick = false;
    double v = 0.0;
    if (run_record_flag(rec, "quick", &rec_quick) && rec_quick == quick &&
        run_record_number(rec, "event_speedup_pmc", &v)) {
      best_prev_pmc = std::max(best_prev_pmc, v);
    }
  }
  const bool speedup_regressed =
      best_prev_pmc > 0.0 &&
      hot[0].event_speedup < kSpeedupTolerance * best_prev_pmc;

  char stamp[32];
  {
    const std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm);
  }
  std::string doc;
  appendf(&doc, "{\n");
  appendf(&doc, "  \"schema\": \"fireguard/sim_speed/v4\",\n");
  appendf(&doc, "  \"quick\": %s,\n", quick ? "true" : "false");
  appendf(&doc, "  \"trace_len\": %llu,\n",
               static_cast<unsigned long long>(trace_len));
  appendf(&doc, "  \"jobs\": %u,\n", jobs);
  appendf(&doc, "  \"effective_workers\": %u,\n", effective_workers);
  appendf(&doc, "  \"hot_loop\": [\n");
  for (size_t i = 0; i < hot.size(); ++i) {
    const soc::SchedStats& s = hot[i].sched;
    appendf(
        &doc,
        "    {\"config\": \"%s\", \"sim_cycles_per_sec\": %.0f, "
        "\"insts_per_sec\": %.0f, \"wall_ms\": %.2f, "
        "\"exact_sim_cycles_per_sec\": %.0f, \"event_speedup\": %.3f, "
        "\"pipeline_sim_cycles_per_sec\": %.0f, "
        "\"pipeline_speedup\": %.3f, \"pipe_epochs\": %llu, "
        "\"pipe_prereleased\": %llu, \"pipe_synced\": %llu, "
        "\"cycles_skipped_pct\": %.2f, \"skips\": %llu}%s\n",
        hot[i].name.c_str(), hot[i].sim_cycles_per_sec, hot[i].insts_per_sec,
        hot[i].wall_ms, hot[i].exact_cycles_per_sec, hot[i].event_speedup,
        hot[i].pipeline_cycles_per_sec, hot[i].pipeline_speedup,
        static_cast<unsigned long long>(hot[i].pipe_sched.pipe_epochs),
        static_cast<unsigned long long>(hot[i].pipe_sched.pipe_prereleased),
        static_cast<unsigned long long>(hot[i].pipe_sched.pipe_synced),
        100.0 * s.skipped_fraction(), static_cast<unsigned long long>(s.skips),
        i + 1 < hot.size() ? "," : "");
  }
  appendf(&doc, "  ],\n");
  appendf(&doc, "  \"fig10_sweep\": {\n");
  appendf(&doc, "    \"points\": %zu,\n", parallel.n_points());
  appendf(&doc, "    \"serial_wall_s\": %.3f,\n", serial.wall_ms() / 1000.0);
  appendf(&doc, "    \"parallel_wall_s\": %.3f,\n",
               parallel.wall_ms() / 1000.0);
  appendf(&doc, "    \"speedup\": %.3f,\n", speedup);
  appendf(&doc, "    \"parallel_efficiency\": %.3f,\n", efficiency);
  appendf(&doc, "    \"baseline_cache_inflight_waits\": %llu,\n",
               static_cast<unsigned long long>(
                   parallel.baseline_cache().inflight_waits()));
  appendf(&doc, "    \"bit_identical\": %s\n",
               bit_identical ? "true" : "false");
  appendf(&doc, "  },\n");
  // The append goes through the same helper the regression tests exercise
  // (src/common/run_history.h), so the tested path IS the production path.
  // Schema v4 record: v3 fields plus per-kernel pipeline speedups (the
  // two-thread epoch-pipelined scheduler vs the serial event loop). Old
  // v2/v3 records in the carried-forward history stay untouched
  // (text-level append); readers skip fields a record predates
  // (run_record_number).
  std::array<u64, 12> hist_sum{};
  for (const HotLoopSpeed& s : hot) {
    for (size_t b = 0; b < hist_sum.size(); ++b) {
      hist_sum[b] += s.sched.skip_len_hist[b];
    }
  }
  std::string hist_json = "[";
  for (size_t b = 0; b < hist_sum.size(); ++b) {
    hist_json += std::to_string(hist_sum[b]);
    if (b + 1 < hist_sum.size()) hist_json += ", ";
  }
  hist_json += "]";
  char record[1024];
  std::snprintf(
      record, sizeof(record),
      "{\"date\": \"%s\", \"quick\": %s, \"trace_len\": %llu, "
      "\"pmc_cycles_per_sec\": %.0f, \"asan_cycles_per_sec\": %.0f, "
      "\"memstall_cycles_per_sec\": %.0f, "
      "\"event_speedup_pmc\": %.3f, \"event_speedup_asan\": %.3f, "
      "\"event_speedup_memstall\": %.3f, "
      "\"pipeline_speedup_pmc\": %.3f, \"pipeline_speedup_asan\": %.3f, "
      "\"pipeline_speedup_memstall\": %.3f, \"skip_len_hist\": %s, "
      "\"sweep_speedup\": %.3f, \"bit_identical\": %s}",
      stamp, quick ? "true" : "false",
      static_cast<unsigned long long>(trace_len),
      hot[0].sim_cycles_per_sec, hot[1].sim_cycles_per_sec,
      hot[2].sim_cycles_per_sec, hot[0].event_speedup, hot[1].event_speedup,
      hot[2].event_speedup, hot[0].pipeline_speedup, hot[1].pipeline_speedup,
      hot[2].pipeline_speedup, hist_json.c_str(), speedup,
      bit_identical ? "true" : "false");
  appendf(&doc, "  \"runs\": [\n    %s\n  ]\n",
               append_run_record(history, record).c_str());
  appendf(&doc, "}\n");
  std::string werr;
  // Atomic temp+rename publish (fsync'd): a crash mid-write can never leave
  // a truncated BENCH_sim_speed.json that a later run would quarantine.
  if (!store::write_file_atomic(out_path, doc, &werr)) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 werr.c_str());
    return kExitIo;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!bit_identical) return kExitFailure;
  if (check && parallel_regressed) {
    std::fprintf(stderr,
                 "FAIL: parallel sweep regressed (speedup %.3f < 1.0 with %u "
                 "workers)\n",
                 speedup, effective_workers);
    return kExitFailure;
  }
  if (check && speedup_regressed) {
    std::fprintf(stderr,
                 "FAIL: event_speedup_pmc %.3f fell below the checked-in "
                 "trajectory (best same-mode record %.3f, tolerance %.2f)\n",
                 hot[0].event_speedup, best_prev_pmc, kSpeedupTolerance);
    return kExitFailure;
  }
  return kExitOk;
}

}  // namespace fg::cli
