// `fgsim store`: direct inspection of a durable result store, no daemon
// needed.
//
//   fgsim store stats --store DIR [--json]
//       object count, total bytes, quarantine count, and a full audit
//       (every entry's checksum, format version, and address verified).
//       Exit 1 while anything sits in quarantine/ — the store serves
//       every readable entry, but something rotted on disk and the
//       evidence hasn't been examined and cleared yet.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/common/json.h"
#include "src/store/result_store.h"
#include "tools/cli/cli.h"

namespace fg::cli {

namespace {

void usage() {
  std::puts(
      "fgsim store — inspect a durable result store\n"
      "  stats --store DIR [--json]   object count, bytes, quarantine count, "
      "full audit");
}

/// Total size and file count under `dir` (0/0 when absent).
void dir_usage(const std::string& dir, u64* files, u64* bytes) {
  *files = 0;
  *bytes = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    ++*files;
    *bytes += static_cast<u64>(entry.file_size(ec));
  }
}

}  // namespace

int store_main(int argc, char** argv) {
  if (argc < 1 || std::strcmp(argv[0], "--help") == 0 ||
      std::strcmp(argv[0], "-h") == 0) {
    usage();
    return argc < 1 ? kExitUsage : kExitOk;
  }
  if (std::strcmp(argv[0], "stats") != 0) {
    std::fprintf(stderr, "fgsim store: unknown subcommand '%s' (try --help)\n",
                 argv[0]);
    return kExitUsage;
  }

  std::string store_dir;
  bool as_json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return kExitOk;
    } else if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg.rfind("--store=", 0) == 0) {
      store_dir = arg.substr(8);
    } else if (arg == "--json") {
      as_json = true;
    } else {
      std::fprintf(stderr,
                   "fgsim store stats: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return kExitUsage;
    }
  }
  if (store_dir.empty()) {
    std::fprintf(stderr, "fgsim store stats: --store DIR is required\n");
    return kExitUsage;
  }

  store::ResultStore store;
  std::string err;
  if (!store.open(store_dir, &err)) {
    std::fprintf(stderr, "fgsim store stats: %s\n", err.c_str());
    return kExitIo;
  }
  store::ResultStore::AuditReport report;
  if (!store.audit(&report, &err)) {
    std::fprintf(stderr, "fgsim store stats: %s\n", err.c_str());
    return kExitIo;
  }
  u64 obj_files = 0, obj_bytes = 0, q_files = 0, q_bytes = 0;
  dir_usage(store.objects_dir(), &obj_files, &obj_bytes);
  dir_usage(store.quarantine_dir(), &q_files, &q_bytes);

  if (as_json) {
    json::Value v = json::Value::object();
    v.set("store", json::Value::of_str(store.dir()));
    v.set("objects", json::Value::of(obj_files));
    v.set("bytes", json::Value::of(obj_bytes));
    v.set("quarantined_files", json::Value::of(q_files));
    json::Value a = json::Value::object();
    a.set("entries", json::Value::of(report.entries));
    a.set("ok", json::Value::of(report.ok));
    a.set("quarantined", json::Value::of(report.quarantined));
    v.set("audit", std::move(a));
    std::printf("%s\n", json::dump(v, 2).c_str());
  } else {
    std::printf(
        "store %s: %llu objects, %llu bytes\n"
        "audit: %llu entries, %llu ok, %llu quarantined this pass\n"
        "quarantine/: %llu files, %llu bytes\n",
        store.dir().c_str(), static_cast<unsigned long long>(obj_files),
        static_cast<unsigned long long>(obj_bytes),
        static_cast<unsigned long long>(report.entries),
        static_cast<unsigned long long>(report.ok),
        static_cast<unsigned long long>(report.quarantined),
        static_cast<unsigned long long>(q_files),
        static_cast<unsigned long long>(q_bytes));
  }
  if (report.quarantined > 0 || q_files > 0) {
    std::fprintf(stderr,
                 "fgsim store stats: %llu corrupt entries in quarantine "
                 "(see %s)\n",
                 static_cast<unsigned long long>(q_files),
                 store.quarantine_dir().c_str());
    return kExitFailure;
  }
  return kExitOk;
}

}  // namespace fg::cli
