// `fgsim serve`: the batch experiment daemon — one process owning a durable
// result store and a Unix-domain socket, executing submitted experiment
// specs on a pool of forked workers with store dedupe, in-flight dedupe,
// work stealing, watchdog, and bounded retry (src/serve/daemon.h has the
// full contract).
//
//   $ fgsim serve --store runs/fleet --socket /tmp/fgsim.sock --workers 4
//
// The daemon runs in the foreground (backgrounding is the shell's job:
// `fgsim serve ... &`). SIGINT/SIGTERM stop it cleanly: in-flight children
// are killed, journaled submissions stay on disk, and the next `fgsim
// serve` with the same store resumes them. Exit codes: 0 clean stop, 2
// usage, 3 store/socket I/O failure (including another live daemon on the
// same socket).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/daemon.h"
#include "tools/cli/cli.h"

#if !defined(_WIN32)
#include <signal.h>
#endif

namespace fg::cli {

namespace {

void usage() {
  std::puts(
      "fgsim serve — batch experiment daemon over a durable result store\n"
      "  --store DIR         result store directory (created if absent)\n"
      "  --socket PATH       Unix-domain socket to listen on\n"
      "  --workers=N         forked worker slots (default: hardware "
      "concurrency)\n"
      "  --max-attempts=N    attempts per point before it counts as failed "
      "(default 3)\n"
      "  --timeout=SECS      per-point wall-clock watchdog (default off)\n"
      "  --backoff-ms=N      base retry backoff, doubled per attempt "
      "(default 50)\n"
      "  --quiet             suppress per-point progress lines\n"
      "Submit work with `fgsim submit --spec FILE --socket PATH`; inspect "
      "with\n`fgsim jobs` / `fgsim status`.");
}

#if !defined(_WIN32)
serve::ServeDaemon* g_daemon = nullptr;

void on_stop_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}
#endif

}  // namespace

int serve_main(int argc, char** argv) {
  serve::ServeConfig cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fgsim serve: %s needs a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return kExitOk;
    } else if (arg == "--store") {
      cfg.store_dir = next("--store");
    } else if (arg.rfind("--store=", 0) == 0) {
      cfg.store_dir = arg.substr(8);
    } else if (arg == "--socket") {
      cfg.socket_path = next("--socket");
    } else if (arg.rfind("--socket=", 0) == 0) {
      cfg.socket_path = arg.substr(9);
    } else if (arg == "--workers") {
      cfg.workers = static_cast<u32>(std::strtoul(next("--workers"),
                                                  nullptr, 10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      cfg.workers =
          static_cast<u32>(std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--max-attempts" ||
               arg.rfind("--max-attempts=", 0) == 0) {
      const char* v = arg[14] == '=' ? arg.c_str() + 15 : next("--max-attempts");
      cfg.max_attempts = static_cast<u32>(std::strtoul(v, nullptr, 10));
      if (cfg.max_attempts == 0) {
        std::fprintf(stderr, "fgsim serve: --max-attempts must be >= 1\n");
        return kExitUsage;
      }
    } else if (arg == "--timeout") {
      cfg.point_timeout_s = std::strtod(next("--timeout"), nullptr);
    } else if (arg.rfind("--timeout=", 0) == 0) {
      cfg.point_timeout_s = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg == "--backoff-ms") {
      cfg.backoff_ms = std::strtoull(next("--backoff-ms"), nullptr, 10);
    } else if (arg.rfind("--backoff-ms=", 0) == 0) {
      cfg.backoff_ms = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--quiet") {
      cfg.quiet = true;
    } else {
      std::fprintf(stderr, "fgsim serve: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return kExitUsage;
    }
  }
  if (cfg.store_dir.empty() || cfg.socket_path.empty()) {
    std::fprintf(stderr,
                 "fgsim serve: --store DIR and --socket PATH are required\n");
    return kExitUsage;
  }

#if defined(_WIN32)
  std::fprintf(stderr,
               "fgsim serve: not supported on this platform (needs Unix "
               "sockets and fork)\n");
  return kExitIo;
#else
  serve::ServeDaemon daemon(std::move(cfg));
  std::string err;
  if (!daemon.init(&err)) {
    std::fprintf(stderr, "fgsim serve: %s\n", err.c_str());
    return kExitIo;
  }
  g_daemon = &daemon;
  ::signal(SIGINT, on_stop_signal);
  ::signal(SIGTERM, on_stop_signal);
  ::signal(SIGPIPE, SIG_IGN);
  const bool ok = daemon.run(&err);
  g_daemon = nullptr;
  if (!ok) {
    std::fprintf(stderr, "fgsim serve: %s\n", err.c_str());
    return kExitIo;
  }
  return kExitOk;
#endif
}

}  // namespace fg::cli
