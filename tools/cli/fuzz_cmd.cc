// Differential scenario fuzzer + golden-corpus maintainer.
//
// Modes (combinable; golden modes run after the fuzz pass when both given):
//   fgfuzz --seeds N            run N seeded scenarios, each simulated under
//                               the cycle-exact reference AND the default
//                               event-driven scheduler; the two stat
//                               snapshots must be bit-identical and no
//                               FG_INVARIANT may fire (Debug builds).
//   fgfuzz --seed S             run exactly one seed (verbose).
//   fgfuzz --update-golden      rewrite tests/golden/*.json from the fixed
//                               corpus seeds (review + commit the diff).
//   fgfuzz --check-golden       re-simulate the corpus and diff against the
//                               checked-in snapshots.
//
// Failure handling: a mismatching seed is shrunk by trace-length bisection
// and reported with a one-line repro command; with --artifacts DIR each
// failure also writes a JSON artifact (seed, full scenario, stat diff) so a
// red CI run is reproducible from the artifact alone.
//
// Flags:
//   --seeds N          number of seeds (default 64)
//   --seed S           single seed (hex 0x.. or decimal); implies --seeds 1
//   --seed-base B      first seed for --seeds runs (default 1)
//   --trace-len N      scenario envelope max trace length (default 12000)
//   --min-trace-len N  scenario envelope min trace length (default 2000)
//   --force-len N      pin every scenario's trace length (shrunk repros)
//   --no-shrink        disable trace-length bisection on failure
//   --artifacts DIR    write per-failure artifact JSONs into DIR
//   --golden-dir DIR   golden corpus location (default tests/golden)
//   --check            exit non-zero on any failure (fuzz or golden)
//   -v                 per-seed scenario summaries
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/cli/cli.h"

#include "src/common/invariant.h"
#include "src/testing/difffuzz.h"
#include "src/testing/golden.h"

namespace {

fg::u64 parse_u64(const char* s) {
  return std::strtoull(s, nullptr, 0);  // base 0: accepts 0x.. and decimal
}

}  // namespace

namespace fg::cli {

int fuzz_main(int argc, char** argv) {

  fuzz::FuzzOptions opt;
  opt.seeds = 64;
  opt.env.max_insts = 12'000;
  bool update_golden = false;
  bool check_golden = false;
  bool check = false;
  std::string golden_dir = "tests/golden";
  bool single_seed = false;
  bool seeds_requested = false;

  for (int i = 0; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fgfuzz: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      opt.seeds = parse_u64(next("--seeds"));
      seeds_requested = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed_base = parse_u64(next("--seed"));
      opt.seeds = 1;
      single_seed = true;
      seeds_requested = true;
    } else if (std::strcmp(argv[i], "--seed-base") == 0) {
      opt.seed_base = parse_u64(next("--seed-base"));
    } else if (std::strcmp(argv[i], "--trace-len") == 0) {
      opt.env.max_insts = parse_u64(next("--trace-len"));
    } else if (std::strcmp(argv[i], "--min-trace-len") == 0) {
      opt.env.min_insts = parse_u64(next("--min-trace-len"));
    } else if (std::strcmp(argv[i], "--force-len") == 0) {
      opt.force_len = parse_u64(next("--force-len"));
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      opt.shrink = false;
    } else if (std::strcmp(argv[i], "--artifacts") == 0) {
      opt.artifact_dir = next("--artifacts");
    } else if (std::strcmp(argv[i], "--golden-dir") == 0) {
      golden_dir = next("--golden-dir");
    } else if (std::strcmp(argv[i], "--update-golden") == 0) {
      update_golden = true;
    } else if (std::strcmp(argv[i], "--check-golden") == 0) {
      check_golden = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "-v") == 0) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: fgfuzz [--seeds N] [--seed S] [--seed-base B] "
                   "[--trace-len N] [--min-trace-len N] [--force-len N] "
                   "[--no-shrink] [--artifacts DIR] [--golden-dir DIR] "
                   "[--update-golden] [--check-golden] [--check] [-v]\n");
      return 2;
    }
  }
  if (opt.env.min_insts > opt.env.max_insts) {
    opt.env.min_insts = opt.env.max_insts;
  }
  if (single_seed) opt.verbose = true;
  // A golden-only invocation skips the fuzz pass; an explicit --seeds/--seed
  // combines with the golden modes (the golden passes run after it).
  const bool run_fuzz_pass =
      seeds_requested || (!update_golden && !check_golden);

  int failures = 0;

  if (run_fuzz_pass) {
    if (!fg::inv::compiled_in()) {
      std::printf(
          "fgfuzz: invariants compiled out (Release) — differential "
          "snapshot check only\n");
    }
    const fuzz::FuzzReport report = fuzz::run_fuzz(opt);
    std::printf(
        "fgfuzz: %llu seeds (base %llu, trace %llu..%llu): "
        "%llu event-vs-exact mismatches, %llu invariant violations\n",
        static_cast<unsigned long long>(report.seeds_run),
        static_cast<unsigned long long>(opt.seed_base),
        static_cast<unsigned long long>(opt.env.min_insts),
        static_cast<unsigned long long>(opt.env.max_insts),
        static_cast<unsigned long long>(report.mismatches),
        static_cast<unsigned long long>(report.invariant_violations));
    for (const fuzz::FuzzFailure& f : report.failures) {
      std::printf("\nFAIL seed 0x%llx [%s] %s\n",
                  static_cast<unsigned long long>(f.seed), f.kind.c_str(),
                  f.summary.c_str());
      if (f.shrunk_len != f.trace_len) {
        std::printf("  shrunk: trace %llu -> %llu insts\n",
                    static_cast<unsigned long long>(f.trace_len),
                    static_cast<unsigned long long>(f.shrunk_len));
      }
      std::printf("  repro: %s\n", f.repro.c_str());
      if (!f.artifact_path.empty()) {
        std::printf("  artifact: %s\n", f.artifact_path.c_str());
      }
      std::printf("%s", f.diff.c_str());
      ++failures;
    }
  }

  if (update_golden) {
    const std::string err = fuzz::update_golden(golden_dir);
    if (!err.empty()) {
      std::fprintf(stderr, "fgfuzz --update-golden: %s\n", err.c_str());
      ++failures;
    } else {
      std::printf("fgfuzz: wrote %zu golden snapshots to %s\n",
                  fuzz::golden_entries().size(), golden_dir.c_str());
    }
  }

  if (check_golden) {
    const std::string report = fuzz::check_golden(golden_dir);
    if (!report.empty()) {
      std::printf("fgfuzz --check-golden FAILURES:\n%s", report.c_str());
      ++failures;
    } else {
      std::printf("fgfuzz: golden corpus OK (%zu snapshots in %s)\n",
                  fuzz::golden_entries().size(), golden_dir.c_str());
    }
  }

  // Failures always exit non-zero; --check is accepted for symmetry with
  // the repro lines and the other tools' CI-gate spelling.
  (void)check;
  return failures != 0 ? 1 : 0;
}

}  // namespace fg::cli
