// The client side of the fgsim serve daemon:
//
//   fgsim submit --spec FILE --socket PATH [--wait] [--json]
//       submit an experiment spec (sweep axes expand daemon-side into grid
//       points, deduplicated against the store and in-flight work). Without
//       --wait, prints the accepted submission id and returns immediately;
//       with --wait (implied by --json) blocks until every point resolves.
//   fgsim jobs [--socket PATH] [--json] [--cancel ID]
//       list the daemon's submissions (or cancel one).
//   fgsim status [--socket PATH] [--json] [--drain | --shutdown]
//       the daemon's observability surface: queue depth, per-worker state,
//       store hits vs executions, dedupe hits, retry/timeout counts.
//
// The socket defaults to $FG_SOCKET. Exit codes (the cli.h contract):
// 0 ok; 1 experiment failure (failed/cancelled points, daemon-side error);
// 2 usage/malformed spec; 3 daemon not running / socket I/O.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/spec.h"
#include "src/serve/client.h"
#include "tools/cli/cli.h"

namespace fg::cli {

namespace {

std::string default_socket(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("FG_SOCKET");
  return env != nullptr ? env : "";
}

#if !defined(_WIN32)
/// Connect or exit-3 diagnostics; false when the socket flag is missing
/// (usage) — *usage distinguishes the two for the caller's exit code.
bool connect_client(serve::Client* client, const std::string& socket_path,
                    const char* tool, bool* usage_error) {
  *usage_error = false;
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "fgsim %s: --socket PATH is required (or set FG_SOCKET)\n",
                 tool);
    *usage_error = true;
    return false;
  }
  std::string err;
  if (!client->connect(socket_path, &err)) {
    std::fprintf(stderr, "fgsim %s: %s\n", tool, err.c_str());
    return false;
  }
  return true;
}
#endif

}  // namespace

int submit_main(int argc, char** argv) {
  std::string spec_path, socket_path, name;
  std::vector<std::pair<std::string, std::string>> sets;
  bool wait = false, as_json = false, with_baseline = true;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fgsim submit: %s needs a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::puts(
          "fgsim submit — send an experiment spec to a running daemon\n"
          "  --spec FILE       ExperimentSpec JSON (sweep axes expand "
          "daemon-side)\n"
          "  --socket PATH     daemon socket (default: $FG_SOCKET)\n"
          "  --set KEY=VALUE   override a knob before submitting "
          "(repeatable)\n"
          "  --name NAME       label for `fgsim jobs` (default: spec name)\n"
          "  --wait            block until every point resolves\n"
          "  --json            print the final response JSON (implies "
          "--wait, attaches results)\n"
          "  --no-baseline     skip the unmonitored baseline / slowdown");
      return kExitOk;
    } else if (arg == "--spec") {
      spec_path = next("--spec");
    } else if (arg.rfind("--spec=", 0) == 0) {
      spec_path = arg.substr(7);
    } else if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg == "--set") {
      const std::string v = next("--set");
      const size_t eq = v.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "fgsim submit: --set expects KEY=VALUE\n");
        return kExitUsage;
      }
      sets.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg == "--name") {
      name = next("--name");
    } else if (arg.rfind("--name=", 0) == 0) {
      name = arg.substr(7);
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--json") {
      as_json = true;
      wait = true;
    } else if (arg == "--no-baseline") {
      with_baseline = false;
    } else {
      std::fprintf(stderr, "fgsim submit: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return kExitUsage;
    }
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "fgsim submit: --spec FILE is required\n");
    return kExitUsage;
  }
  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "fgsim submit: cannot read %s\n", spec_path.c_str());
    return kExitIo;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  api::ExperimentSpec spec;
  std::string err;
  if (!api::spec_from_json(ss.str(), &spec, &err)) {
    std::fprintf(stderr, "fgsim submit: %s: %s\n", spec_path.c_str(),
                 err.c_str());
    return kExitUsage;
  }
  for (const auto& [key, value] : sets) {
    if (!api::apply_set(&spec, key, value, &err)) {
      std::fprintf(stderr, "fgsim submit: %s\n", err.c_str());
      return kExitUsage;
    }
  }

#if defined(_WIN32)
  std::fprintf(stderr, "fgsim submit: not supported on this platform\n");
  return kExitIo;
#else
  serve::Client client;
  bool usage_error = false;
  if (!connect_client(&client, default_socket(socket_path), "submit",
                      &usage_error)) {
    return usage_error ? kExitUsage : kExitIo;
  }
  json::Value resp;
  if (!client.call(
          serve::submit_request(spec, wait, /*want_results=*/as_json,
                                with_baseline, name),
          &resp, &err)) {
    std::fprintf(stderr, "fgsim submit: %s\n", err.c_str());
    return kExitIo;
  }
  if (!resp.get_bool("ok")) {
    std::fprintf(stderr, "fgsim submit: daemon: %s\n",
                 resp.get_str("error").c_str());
    return kExitFailure;
  }
  if (as_json) {
    std::printf("%s\n", json::dump(resp, 2).c_str());
  } else {
    std::printf(
        "submission %llu (%s): %llu points, %llu from store, %llu deduped"
        "%s\n",
        static_cast<unsigned long long>(resp.get_u64("id")),
        resp.get_str("name").c_str(),
        static_cast<unsigned long long>(resp.get_u64("points")),
        static_cast<unsigned long long>(resp.get_u64("from_store")),
        static_cast<unsigned long long>(resp.get_u64("deduped")),
        resp.get_bool("complete") ? " — complete" : (wait ? "" : " — queued"));
  }
  if (resp.get_bool("cancelled")) {
    std::fprintf(stderr, "fgsim submit: submission was cancelled\n");
    return kExitFailure;
  }
  if (wait && resp.get_u64("failed") > 0) {
    std::fprintf(stderr, "fgsim submit: %llu of %llu points failed\n",
                 static_cast<unsigned long long>(resp.get_u64("failed")),
                 static_cast<unsigned long long>(resp.get_u64("points")));
    return kExitFailure;
  }
  return kExitOk;
#endif
}

int jobs_main(int argc, char** argv) {
  std::string socket_path;
  bool as_json = false;
  u64 cancel_id = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::puts(
          "fgsim jobs — list (or cancel) a serve daemon's submissions\n"
          "  --socket PATH     daemon socket (default: $FG_SOCKET)\n"
          "  --json            print the raw response JSON\n"
          "  --cancel=ID       cancel a submission's pending points");
      return kExitOk;
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg.rfind("--cancel=", 0) == 0) {
      cancel_id = std::strtoull(arg.c_str() + 9, nullptr, 10);
      if (cancel_id == 0) {
        std::fprintf(stderr, "fgsim jobs: --cancel expects a submission id\n");
        return kExitUsage;
      }
    } else {
      std::fprintf(stderr, "fgsim jobs: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return kExitUsage;
    }
  }
#if defined(_WIN32)
  std::fprintf(stderr, "fgsim jobs: not supported on this platform\n");
  return kExitIo;
#else
  serve::Client client;
  bool usage_error = false;
  if (!connect_client(&client, default_socket(socket_path), "jobs",
                      &usage_error)) {
    return usage_error ? kExitUsage : kExitIo;
  }
  std::string err;
  json::Value resp;
  const std::string req = cancel_id != 0 ? serve::cancel_request(cancel_id)
                                         : serve::simple_request("status");
  if (!client.call(req, &resp, &err)) {
    std::fprintf(stderr, "fgsim jobs: %s\n", err.c_str());
    return kExitIo;
  }
  if (!resp.get_bool("ok")) {
    std::fprintf(stderr, "fgsim jobs: daemon: %s\n",
                 resp.get_str("error").c_str());
    return kExitFailure;
  }
  if (as_json) {
    std::printf("%s\n", json::dump(resp, 2).c_str());
    return kExitOk;
  }
  if (cancel_id != 0) {
    std::printf("cancelled submission %llu (%llu pending points dropped)\n",
                static_cast<unsigned long long>(cancel_id),
                static_cast<unsigned long long>(
                    resp.get_u64("cancelled_pending")));
    return kExitOk;
  }
  const json::Value* jobs = resp.get("jobs");
  if (jobs == nullptr || jobs->arr.empty()) {
    std::puts("no submissions");
    return kExitOk;
  }
  std::printf("%-6s %-24s %8s %8s %8s %8s %8s %s\n", "id", "name", "points",
              "done", "failed", "store", "deduped", "state");
  for (const json::Value& j : jobs->arr) {
    const char* state = j.get_bool("cancelled")  ? "cancelled"
                        : j.get_bool("complete") ? "complete"
                                                 : "running";
    std::printf("%-6llu %-24s %8llu %8llu %8llu %8llu %8llu %s%s\n",
                static_cast<unsigned long long>(j.get_u64("id")),
                j.get_str("name").c_str(),
                static_cast<unsigned long long>(j.get_u64("points")),
                static_cast<unsigned long long>(j.get_u64("done")),
                static_cast<unsigned long long>(j.get_u64("failed")),
                static_cast<unsigned long long>(j.get_u64("from_store")),
                static_cast<unsigned long long>(j.get_u64("deduped")), state,
                j.get_bool("replayed") ? " (replayed)" : "");
  }
  return kExitOk;
#endif
}

int status_main(int argc, char** argv) {
  std::string socket_path;
  bool as_json = false;
  const char* kind = "stats";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::puts(
          "fgsim status — a serve daemon's live counters\n"
          "  --socket PATH     daemon socket (default: $FG_SOCKET)\n"
          "  --json            print the raw response JSON\n"
          "  --drain           stop accepting work; return once the backlog "
          "is empty\n"
          "  --shutdown        stop the daemon (journaled submissions resume "
          "on restart)");
      return kExitOk;
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--drain") {
      kind = "drain";
    } else if (arg == "--shutdown") {
      kind = "shutdown";
    } else {
      std::fprintf(stderr, "fgsim status: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return kExitUsage;
    }
  }
#if defined(_WIN32)
  std::fprintf(stderr, "fgsim status: not supported on this platform\n");
  return kExitIo;
#else
  serve::Client client;
  bool usage_error = false;
  if (!connect_client(&client, default_socket(socket_path), "status",
                      &usage_error)) {
    return usage_error ? kExitUsage : kExitIo;
  }
  std::string err;
  json::Value resp;
  if (!client.call(serve::simple_request(kind), &resp, &err)) {
    std::fprintf(stderr, "fgsim status: %s\n", err.c_str());
    return kExitIo;
  }
  if (!resp.get_bool("ok")) {
    std::fprintf(stderr, "fgsim status: daemon: %s\n",
                 resp.get_str("error").c_str());
    return kExitFailure;
  }
  if (as_json) {
    std::printf("%s\n", json::dump(resp, 2).c_str());
    return kExitOk;
  }
  if (std::strcmp(kind, "drain") == 0) {
    std::puts("drained: backlog empty");
    return kExitOk;
  }
  if (std::strcmp(kind, "shutdown") == 0) {
    std::puts("daemon shutting down");
    return kExitOk;
  }
  const json::Value* st = resp.get("stats");
  if (st == nullptr) {
    std::fprintf(stderr, "fgsim status: malformed stats response\n");
    return kExitFailure;
  }
  std::printf(
      "submissions: %llu accepted, %llu completed, %llu cancelled, %llu "
      "replayed\n"
      "points:      %llu submitted = %llu store hits + %llu dedupe hits + "
      "%llu executed + %llu failed + %llu cancelled + %llu in flight\n"
      "retries:     %llu (%llu timeouts); steals: %llu\n"
      "queue:       depth %llu, running %llu%s\n",
      static_cast<unsigned long long>(st->get_u64("submissions_accepted")),
      static_cast<unsigned long long>(st->get_u64("submissions_completed")),
      static_cast<unsigned long long>(st->get_u64("submissions_cancelled")),
      static_cast<unsigned long long>(st->get_u64("submissions_replayed")),
      static_cast<unsigned long long>(st->get_u64("points_submitted")),
      static_cast<unsigned long long>(st->get_u64("store_hits")),
      static_cast<unsigned long long>(st->get_u64("dedupe_hits")),
      static_cast<unsigned long long>(st->get_u64("executed")),
      static_cast<unsigned long long>(st->get_u64("failed_points")),
      static_cast<unsigned long long>(st->get_u64("cancelled_points")),
      static_cast<unsigned long long>(
          st->get_u64("queue_depth") + st->get_u64("running")),
      static_cast<unsigned long long>(st->get_u64("retries")),
      static_cast<unsigned long long>(st->get_u64("timeouts")),
      static_cast<unsigned long long>(st->get_u64("steals")),
      static_cast<unsigned long long>(st->get_u64("queue_depth")),
      static_cast<unsigned long long>(st->get_u64("running")),
      resp.get_bool("draining") ? " (draining)" : "");
  const json::Value* workers = resp.get("workers");
  if (workers != nullptr) {
    for (size_t i = 0; i < workers->arr.size(); ++i) {
      const json::Value& w = workers->arr[i];
      if (w.get_str("state") == "running") {
        std::printf("worker %zu: running sub %llu\n", i,
                    static_cast<unsigned long long>(w.get_u64("sub")));
      } else {
        std::printf("worker %zu: idle\n", i);
      }
    }
  }
  return kExitOk;
#endif
}

}  // namespace fg::cli
