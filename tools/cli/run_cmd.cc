// `fgsim run`: run one declarative experiment and print a machine-readable
// "key value" summary (the historical fireguard-sim output format).
//
//   $ fgsim run --spec examples/table2.json
//   $ fgsim run --spec examples/table2.json --set trace_len=20000 --json out.json
//   $ fgsim run --kernel=asan --engines=4 --workload=x264        (legacy flags)
//   $ fgsim run --software=asan_x86 --workload=dedup
//
// Exit status (the cli.h contract): 2 on a configuration error, 3 when a
// file cannot be read or written, 1 when --attacks / the spec's attack plan
// goes undetected, 0 otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "tools/cli/cli.h"

namespace fg::cli {

namespace {

using namespace fg;

void usage() {
  std::puts(
      "fgsim run — run one experiment\n"
      "  --spec FILE         load an ExperimentSpec JSON file\n"
      "  --set KEY=VALUE     override a spec knob (repeatable; see `fgsim "
      "spec --keys`)\n"
      "  --json PATH         also write the structured outcome "
      "(metrics + snapshot) as JSON\n"
      "  --no-baseline       skip the unmonitored baseline run / slowdown\n"
      "  --pipeline          two-thread epoch-pipelined scheduler "
      "(bit-identical; also FG_PIPELINE=1)\n"
      "  --serial            force the serial event scheduler\n"
      "Legacy flags (the deprecated fireguard-sim surface):\n"
      "  --workload=NAME     parsec-like profile (blackscholes..x264)\n"
      "  --kernel=K          pmc | shadow | asan | uaf\n"
      "  --software=S        shadow_llvm | asan_aarch64 | asan_x86 | dangsan\n"
      "  --engines=N --ha --filter-width=N --mapper-width=N --policy=P\n"
      "  --model=M --attacks=N --trace-len=N --seed=N --stlf --detailed-mem");
}

/// kExitOk, or the exit code the caller should return (kExitIo for an
/// unreadable file, kExitUsage for malformed spec JSON).
int load_spec_file(const std::string& path, api::ExperimentSpec* spec) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fgsim run: cannot read spec file %s\n",
                 path.c_str());
    return kExitIo;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  if (!api::spec_from_json(ss.str(), spec, &err)) {
    std::fprintf(stderr, "fgsim run: %s: %s\n", path.c_str(), err.c_str());
    return kExitUsage;
  }
  return kExitOk;
}

trace::AttackKind attack_for(kernels::KernelKind k) {
  switch (k) {
    case kernels::KernelKind::kPmc: return trace::AttackKind::kPcHijack;
    case kernels::KernelKind::kShadowStack: return trace::AttackKind::kRetCorrupt;
    case kernels::KernelKind::kAsan: return trace::AttackKind::kHeapOob;
    case kernels::KernelKind::kUaf: return trace::AttackKind::kUseAfterFree;
  }
  return trace::AttackKind::kHeapOob;
}

}  // namespace

int run_main(int argc, char** argv) {
  api::ExperimentSpec spec;
  bool spec_loaded = false;
  // (flag, value) pairs applied AFTER the spec file loads, in order.
  std::vector<std::pair<std::string, std::string>> sets;
  std::string json_out;
  bool with_baseline = true;
  api::SessionConfig::Sched sched = api::SessionConfig::Sched::kInherit;
  u32 legacy_attacks = 0;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto eat = [&](const char* prefix, std::string* out) {
      const size_t n = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(n);
        return true;
      }
      return false;
    };
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fgsim run: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    std::string v;
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--spec") {
      if (const int rc = load_spec_file(next("--spec"), &spec)) return rc;
      spec_loaded = true;
    } else if (eat("--spec=", &v)) {
      if (const int rc = load_spec_file(v, &spec)) return rc;
      spec_loaded = true;
    } else if (arg == "--set") {
      v = next("--set");
      const size_t eq = v.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "fgsim run: --set expects KEY=VALUE, got %s\n",
                     v.c_str());
        return 2;
      }
      sets.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg == "--json") {
      json_out = next("--json");
    } else if (eat("--json=", &v)) {
      json_out = v;
    } else if (arg == "--no-baseline") {
      with_baseline = false;
    } else if (arg == "--pipeline") {
      sched = api::SessionConfig::Sched::kPipelined;
    } else if (arg == "--serial") {
      sched = api::SessionConfig::Sched::kSerial;
    }
    // --- legacy fireguard-sim flags, mapped onto the spec knobs ---
    else if (eat("--workload=", &v)) sets.emplace_back("workload", v);
    else if (eat("--kernel=", &v)) sets.emplace_back("kernel", v);
    else if (eat("--software=", &v)) sets.emplace_back("scheme", v);
    else if (eat("--engines=", &v)) sets.emplace_back("engines", v);
    else if (arg == "--ha") sets.emplace_back("ha", "true");
    else if (eat("--filter-width=", &v)) sets.emplace_back("filter_width", v);
    else if (eat("--mapper-width=", &v)) sets.emplace_back("mapper_width", v);
    else if (eat("--policy=", &v)) sets.emplace_back("policy", v);
    else if (eat("--model=", &v)) sets.emplace_back("model", v);
    else if (eat("--trace-len=", &v)) sets.emplace_back("trace_len", v);
    else if (eat("--seed=", &v)) sets.emplace_back("seed", v);
    else if (arg == "--stlf") sets.emplace_back("stlf", "true");
    else if (arg == "--detailed-mem") sets.emplace_back("detailed_mem", "true");
    else if (eat("--attacks=", &v)) {
      legacy_attacks = static_cast<u32>(std::strtoul(v.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "fgsim run: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (!spec_loaded) spec = api::default_spec();
  for (const auto& [key, value] : sets) {
    std::string err;
    if (!api::apply_set(&spec, key, value, &err)) {
      std::fprintf(stderr, "fgsim run: %s\n", err.c_str());
      return 2;
    }
  }
  // Legacy --attacks=N: N attacks of the kind the deployed kernel detects.
  // FireGuard mode only, exactly like the historical fireguard-sim (its
  // --software branch never consumed --attacks).
  if (legacy_attacks > 0 && spec.mode == api::Mode::kFireguard) {
    const kernels::KernelKind kind = spec.soc.kernels.empty()
                                         ? kernels::KernelKind::kAsan
                                         : spec.soc.kernels.front().kind;
    spec.workload.attacks = {{attack_for(kind), legacy_attacks}};
  }
  if (!spec.sweep.empty()) {
    std::fprintf(stderr,
                 "fgsim run: spec has sweep axes; use `fgsim sweep`\n");
    return 2;
  }

  api::SessionConfig cfg;
  cfg.jobs = 1;
  cfg.with_baseline = with_baseline && spec.mode != api::Mode::kBaseline;
  cfg.sched = sched;
  api::SimSession session(spec, cfg);
  const api::RunOutcome& r = session.run();

  // The historical fireguard-sim "key value" summary.
  std::printf("workload %s\n", spec.workload.profile.name.c_str());
  std::printf("trace_len %llu\n",
              static_cast<unsigned long long>(spec.workload.n_insts));
  if (cfg.with_baseline) {
    std::printf("baseline_cycles %llu\n",
                static_cast<unsigned long long>(r.baseline_cycles));
  }
  switch (spec.mode) {
    case api::Mode::kBaseline:
      std::printf("mode baseline\n");
      break;
    case api::Mode::kSoftware:
      std::printf("mode software/%s\n", baseline::sw_scheme_name(spec.scheme));
      std::printf("expansion %.3f\n", r.result.expansion);
      break;
    case api::Mode::kFireguard: {
      std::string kernels_s;
      u32 engines = 0;
      bool ha = false;
      for (const soc::KernelDeployment& d : spec.soc.kernels) {
        if (!kernels_s.empty()) kernels_s += "+";
        kernels_s += kernels::kernel_name(d.kind);
        engines += d.use_ha ? 1 : d.n_engines;
        ha |= d.use_ha;
      }
      std::printf("mode fireguard/%s engines=%u%s\n", kernels_s.c_str(),
                  engines, ha ? " (HA)" : "");
      break;
    }
  }
  std::printf("cycles %llu\n",
              static_cast<unsigned long long>(r.result.cycles));
  if (cfg.with_baseline) std::printf("slowdown %.4f\n", r.slowdown);
  std::printf("ipc %.3f\n", r.result.ipc);
  // Unconditional like the historical fireguard-sim: software/baseline runs
  // print zeros, and output-parsing scripts keep finding every key.
  std::printf("packets %llu\n",
              static_cast<unsigned long long>(r.result.packets));
  static const char* kCause[] = {"none", "filter", "mapper", "cdc",
                                 "engines"};
  for (size_t i = 1; i < 5; ++i) {
    std::printf("stall_%s %.4f\n", kCause[i], r.result.stall_fractions[i]);
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "fgsim run: cannot write %s\n", json_out.c_str());
      return kExitIo;
    }
    out << api::outcome_json(r) << "\n";
  }

  if (spec.mode == api::Mode::kFireguard && r.result.planned_attacks > 0) {
    std::printf("attacks_planned %llu\n",
                static_cast<unsigned long long>(r.result.planned_attacks));
    std::printf("attacks_detected %zu\n", r.result.detections.size());
    double worst_ns = 0;
    for (const auto& d : r.result.detections) {
      worst_ns = d.latency_ns > worst_ns ? d.latency_ns : worst_ns;
    }
    std::printf("worst_latency_ns %.1f\n", worst_ns);
    if (r.result.detections.size() < r.result.planned_attacks) {
      std::fprintf(stderr, "MISSED %llu attacks\n",
                   static_cast<unsigned long long>(
                       r.result.planned_attacks - r.result.detections.size()));
      return 1;
    }
  }
  return 0;
}

}  // namespace fg::cli
