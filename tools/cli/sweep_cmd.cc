// `fgsim sweep`: expand a spec's sweep axes into the full cross-product
// grid and run it across worker threads, with live per-point progress.
//
//   $ fgsim sweep --spec examples/fig10_quick.json
//   $ fgsim sweep --spec grid.json --set trace_len=20000 --jobs=8 --json out.json
//
// Results are bit-identical regardless of --jobs (each point is a
// self-contained deterministic simulation; see src/api/session.h).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/common/stats.h"
#include "tools/cli/cli.h"

namespace fg::cli {

namespace {

void usage() {
  std::puts(
      "fgsim sweep — run a spec's sweep grid\n"
      "  --spec FILE         ExperimentSpec JSON with a \"sweep\" section\n"
      "  --set KEY=VALUE     override a knob before expansion (repeatable)\n"
      "  --jobs=N            worker threads (default FG_JOBS, else hw)\n"
      "  --json PATH         write all structured outcomes as a JSON array\n"
      "  --quiet             suppress per-point progress lines");
}

}  // namespace

int sweep_main(int argc, char** argv) {
  std::string spec_path;
  std::vector<std::pair<std::string, std::string>> sets;
  std::string json_out;
  u32 jobs = 0;
  bool quiet = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fgsim sweep: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--spec") {
      spec_path = next("--spec");
    } else if (arg.rfind("--spec=", 0) == 0) {
      spec_path = arg.substr(7);
    } else if (arg == "--set") {
      const std::string v = next("--set");
      const size_t eq = v.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "fgsim sweep: --set expects KEY=VALUE\n");
        return 2;
      }
      sets.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<u32>(std::strtoul(arg.c_str() + 7, nullptr, 10));
    } else if (arg == "--json") {
      json_out = next("--json");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_out = arg.substr(7);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "fgsim sweep: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "fgsim sweep: --spec FILE is required\n");
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "fgsim sweep: cannot read %s\n", spec_path.c_str());
    return kExitIo;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  api::ExperimentSpec spec;
  std::string err;
  if (!api::spec_from_json(ss.str(), &spec, &err)) {
    std::fprintf(stderr, "fgsim sweep: %s: %s\n", spec_path.c_str(),
                 err.c_str());
    return 2;
  }
  for (const auto& [key, value] : sets) {
    if (!api::apply_set(&spec, key, value, &err)) {
      std::fprintf(stderr, "fgsim sweep: %s\n", err.c_str());
      return 2;
    }
  }
  // Validate the axes per-value (O(sum), not the cross product) so a bad
  // axis is a recoverable CLI error; SimSession's constructor, which
  // expands the real grid once, FG_CHECKs on invalid input.
  {
    api::ExperimentSpec scratch = spec;
    for (const api::SweepAxis& axis : spec.sweep) {
      if (axis.values.empty()) {
        std::fprintf(stderr, "fgsim sweep: sweep axis \"%s\" is empty\n",
                     axis.key.c_str());
        return 2;
      }
      for (const std::string& v : axis.values) {
        if (!api::apply_set(&scratch, axis.key, v, &err)) {
          std::fprintf(stderr, "fgsim sweep: %s\n", err.c_str());
          return 2;
        }
      }
    }
  }

  api::SessionConfig cfg;
  cfg.jobs = jobs;
  api::SimSession session(spec, cfg);
  std::printf("fgsim sweep: %zu points on %u workers\n", session.n_points(),
              session.workers());
  if (!quiet) {
    session.on_progress([](const api::Progress& p) {
      std::printf("  [%3zu/%zu] %-48s slowdown %6.3f  (%.0f ms)\n",
                  p.completed, p.total, p.outcome->name.c_str(),
                  p.outcome->slowdown, p.outcome->wall_ms);
      std::fflush(stdout);
    });
  }
  const std::vector<api::RunOutcome>& results = session.run_all();

  std::vector<double> slowdowns;
  for (const api::RunOutcome& r : results) {
    if (r.slowdown > 0.0) slowdowns.push_back(r.slowdown);
  }
  if (!slowdowns.empty()) {
    std::printf("geomean slowdown: %.3f over %zu points\n",
                geomean(slowdowns), slowdowns.size());
  }
  std::printf(
      "wall %.2f s; baseline cache: %llu hits, %llu misses, %llu in-flight "
      "waits\n",
      session.wall_ms() / 1000.0,
      static_cast<unsigned long long>(session.baseline_cache().hits()),
      static_cast<unsigned long long>(session.baseline_cache().misses()),
      static_cast<unsigned long long>(
          session.baseline_cache().inflight_waits()));

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "fgsim sweep: cannot write %s\n",
                   json_out.c_str());
      return kExitIo;
    }
    out << "[\n";
    for (size_t i = 0; i < results.size(); ++i) {
      out << api::outcome_json(results[i]);
      out << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "]\n";
  }
  return 0;
}

}  // namespace fg::cli
