// fgsim: the unified FireGuard experiment CLI.
//
// One binary, one declarative surface: every subcommand consumes the
// serializable ExperimentSpec (src/api/spec.h) and drives the SimSession
// facade, so anything a user can write in a spec file is runnable,
// sweepable, and fuzz-comparable through the same code path.
//
//   fgsim run      --spec FILE [--set k=v ...] one experiment, key-value summary
//   fgsim sweep    --spec FILE [--jobs=N]      expand sweep axes, run the grid
//   fgsim campaign --spec FILE --store DIR     resumable sweep vs durable store
//   fgsim spec     [--spec FILE] [--set ...]   resolve + export a spec
//   fgsim fuzz     [--seeds N ...]             differential scenario fuzzer
//   fgsim speed    [--quick ...]               simulator-speed tracker
//   fgsim serve    --store DIR --socket PATH   batch daemon over the store
//   fgsim submit   --spec FILE [--wait]        send a spec to the daemon
//   fgsim jobs     [--cancel ID]               list/cancel daemon submissions
//   fgsim status   [--drain | --shutdown]      daemon counters and control
//   fgsim store    stats --store DIR           store audit + usage, no daemon
//
// Exit codes (see tools/cli/cli.h): 0 ok, 1 experiment failure, 2 usage,
// 3 I/O.
//
// The historical binaries remain as deprecated aliases:
//   fireguard-sim == fgsim run   (legacy flags accepted by both)
//   fgfuzz        == fgsim fuzz
//   simspeed      == fgsim speed
#include <cstdio>
#include <cstring>

#include "tools/cli/cli.h"

namespace {

void usage() {
  std::puts(
      "usage: fgsim <command> [options]\n"
      "  run       run one experiment from a spec file / --set overrides\n"
      "  sweep     expand a spec's sweep axes and run the whole grid\n"
      "  campaign  resumable sweep against a durable result store\n"
      "  spec      resolve and print a spec (--keys | --schema for tooling)\n"
      "  fuzz      differential scenario fuzzer + golden corpus maintainer\n"
      "  speed     simulator-speed tracker (BENCH_sim_speed.json)\n"
      "  serve     batch experiment daemon (durable store + Unix socket)\n"
      "  submit    send a spec to a running serve daemon\n"
      "  jobs      list or cancel a serve daemon's submissions\n"
      "  status    serve daemon counters (--drain / --shutdown)\n"
      "  store     inspect a result store (stats: audit, objects, bytes)\n"
      "Run `fgsim <command> --help` for per-command options.\n"
      "Exit codes: 0 ok, 1 experiment failure, 2 usage error, 3 I/O error.");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0 || std::strcmp(argv[1], "help") == 0) {
    usage();
    return argc < 2 ? 2 : 0;
  }
  const char* cmd = argv[1];
  const int sub_argc = argc - 2;
  char** sub_argv = argv + 2;
  if (std::strcmp(cmd, "run") == 0) return fg::cli::run_main(sub_argc, sub_argv);
  if (std::strcmp(cmd, "sweep") == 0) {
    return fg::cli::sweep_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "campaign") == 0) {
    return fg::cli::campaign_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "spec") == 0) {
    return fg::cli::spec_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "fuzz") == 0) {
    return fg::cli::fuzz_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "speed") == 0) {
    return fg::cli::speed_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "serve") == 0) {
    return fg::cli::serve_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "submit") == 0) {
    return fg::cli::submit_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "jobs") == 0) {
    return fg::cli::jobs_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "status") == 0) {
    return fg::cli::status_main(sub_argc, sub_argv);
  }
  if (std::strcmp(cmd, "store") == 0) {
    return fg::cli::store_main(sub_argc, sub_argv);
  }
  std::fprintf(stderr, "fgsim: unknown command '%s'\n", cmd);
  usage();
  return 2;
}
