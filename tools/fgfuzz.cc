// fgfuzz: deprecated alias for `fgsim fuzz` (same flags, same behavior).
// The implementation lives in tools/cli/fuzz_cmd.cc.
#include "tools/cli/cli.h"

int main(int argc, char** argv) {
  return fg::cli::fuzz_main(argc - 1, argv + 1);
}
