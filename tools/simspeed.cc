// simspeed: deprecated alias for `fgsim speed` (same flags, same behavior).
// The implementation lives in tools/cli/speed_cmd.cc.
#include "tools/cli/cli.h"

int main(int argc, char** argv) {
  return fg::cli::speed_main(argc - 1, argv + 1);
}
