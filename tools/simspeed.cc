// Simulator-speed tracker: emits BENCH_sim_speed.json so the performance
// trajectory of the simulator itself is measured, not guessed.
//
// Three measurements:
//  1. Single-thread hot-loop speed — simulated fast-domain cycles per wall
//     second (and committed instructions per second) for a light (PMC) and a
//     heavy (ASan) kernel deployment.
//  2. The Figure-10 sweep grid executed serially (jobs=1) and with FG_JOBS
//     workers: wall clock for each, honest parallel speedup.
//  3. A bit-identity audit: every parallel RunResult (cycles, committed,
//     detections, packets) must equal its serial counterpart, byte for byte.
//     A mismatch makes the tool exit non-zero.
//
// Usage: simspeed [--quick] [--jobs=N] [--trace-len=N] [--out=PATH]
//   --quick      small trace (20k insts) and the PMC+ASan subset of the
//                fig10 grid — for CI and smoke runs
//   --jobs=N     parallel worker count (default: FG_JOBS env, else hw)
//   --trace-len  per-point trace length (default: FG_TRACE_LEN env / 150k)
//   --out=PATH   output JSON path (default: BENCH_sim_speed.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/soc/figures.h"
#include "src/soc/sweep.h"

namespace {

using namespace fg;

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

struct HotLoopSpeed {
  std::string name;
  double sim_cycles_per_sec = 0.0;
  double insts_per_sec = 0.0;
  double wall_ms = 0.0;
};

/// One run_fireguard, timed; reports simulated fast cycles per wall second.
HotLoopSpeed measure_hot_loop(const char* name, kernels::KernelKind kind,
                              u64 n_insts) {
  soc::SocConfig sc = soc::table2_soc();
  sc.kernels = {soc::deploy(kind, 4)};
  const trace::WorkloadConfig wl = soc::paper_workload("blackscholes", n_insts);
  const double t0 = now_ms();
  const soc::RunResult r = soc::run_fireguard(wl, sc);
  const double ms = now_ms() - t0;
  HotLoopSpeed s;
  s.name = name;
  s.wall_ms = ms;
  if (ms > 0.0) {
    s.sim_cycles_per_sec = static_cast<double>(r.cycles) / (ms / 1000.0);
    s.insts_per_sec = static_cast<double>(r.committed) / (ms / 1000.0);
  }
  return s;
}

/// The Figure-10 grid, from the same definition bench_fig10_scalability
/// registers (src/soc/figures.cc) — the measured grid cannot drift from the
/// real one.
void add_fig10_grid(soc::SweepRunner& runner, u64 n_insts, bool quick) {
  for (soc::SweepPoint& p : soc::fig10_points(n_insts, quick)) {
    runner.add(std::move(p));
  }
}

bool results_identical(const soc::PointResult& a, const soc::PointResult& b) {
  if (a.run.cycles != b.run.cycles) return false;
  if (a.run.committed != b.run.committed) return false;
  if (a.run.packets != b.run.packets) return false;
  if (a.run.spurious != b.run.spurious) return false;
  if (a.baseline_cycles != b.baseline_cycles) return false;
  if (a.run.detections.size() != b.run.detections.size()) return false;
  for (size_t i = 0; i < a.run.detections.size(); ++i) {
    const soc::DetectionRecord& da = a.run.detections[i];
    const soc::DetectionRecord& db = b.run.detections[i];
    if (da.attack_id != db.attack_id || da.engine != db.engine ||
        da.commit_fast != db.commit_fast || da.detect_fast != db.detect_fast) {
      return false;
    }
  }
  return true;
}

u64 arg_u64(const char* arg, const char* prefix, u64 fallback) {
  const size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return fallback;
  return std::strtoull(arg + n, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  u32 jobs = ThreadPool::default_jobs();
  u64 trace_len = soc::default_trace_len();
  std::string out_path = "BENCH_sim_speed.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<u32>(arg_u64(argv[i], "--jobs=", jobs));
    } else if (std::strncmp(argv[i], "--trace-len=", 12) == 0) {
      trace_len = arg_u64(argv[i], "--trace-len=", trace_len);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: simspeed [--quick] [--jobs=N] [--trace-len=N] "
                   "[--out=PATH]\n");
      return 2;
    }
  }
  if (quick) trace_len = std::min<u64>(trace_len, 20'000);

  std::printf("simspeed: trace_len=%llu jobs=%u%s\n",
              static_cast<unsigned long long>(trace_len), jobs,
              quick ? " (quick)" : "");

  // 1) Single-thread hot-loop speed.
  std::vector<HotLoopSpeed> hot;
  hot.push_back(measure_hot_loop("pmc_4ucores", kernels::KernelKind::kPmc,
                                 trace_len));
  hot.push_back(measure_hot_loop("asan_4ucores", kernels::KernelKind::kAsan,
                                 trace_len));
  for (const HotLoopSpeed& s : hot) {
    std::printf("hot loop %-14s: %8.2f M sim-cycles/s, %8.2f M insts/s "
                "(%.1f ms)\n",
                s.name.c_str(), s.sim_cycles_per_sec / 1e6,
                s.insts_per_sec / 1e6, s.wall_ms);
  }

  // 2) Fig. 10 sweep, serial then parallel.
  soc::SweepRunner serial(soc::SweepConfig{1});
  add_fig10_grid(serial, trace_len, quick);
  serial.run_all();
  std::printf("fig10 sweep serial  : %zu points, %.2f s\n", serial.n_points(),
              serial.wall_ms() / 1000.0);

  soc::SweepRunner parallel(soc::SweepConfig{jobs});
  add_fig10_grid(parallel, trace_len, quick);
  parallel.run_all();
  const double speedup = parallel.wall_ms() > 0.0
                             ? serial.wall_ms() / parallel.wall_ms()
                             : 0.0;
  std::printf("fig10 sweep parallel: %zu points on %u jobs, %.2f s "
              "(speedup %.2fx vs serial)\n",
              parallel.n_points(), jobs, parallel.wall_ms() / 1000.0, speedup);

  // 3) Bit-identity audit.
  u32 mismatches = 0;
  for (u32 i = 0; i < parallel.n_points(); ++i) {
    if (!results_identical(serial.result(i), parallel.result(i))) {
      std::fprintf(stderr, "MISMATCH at point %s\n",
                   parallel.point(i).name.c_str());
      ++mismatches;
    }
  }
  std::printf("bit-identity audit  : %u mismatches over %zu points\n",
              mismatches, parallel.n_points());

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"fireguard/sim_speed/v1\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"trace_len\": %llu,\n",
               static_cast<unsigned long long>(trace_len));
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"hot_loop\": [\n");
  for (size_t i = 0; i < hot.size(); ++i) {
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"sim_cycles_per_sec\": %.0f, "
                 "\"insts_per_sec\": %.0f, \"wall_ms\": %.2f}%s\n",
                 hot[i].name.c_str(), hot[i].sim_cycles_per_sec,
                 hot[i].insts_per_sec, hot[i].wall_ms,
                 i + 1 < hot.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"fig10_sweep\": {\n");
  std::fprintf(f, "    \"points\": %zu,\n", parallel.n_points());
  std::fprintf(f, "    \"serial_wall_s\": %.3f,\n", serial.wall_ms() / 1000.0);
  std::fprintf(f, "    \"parallel_wall_s\": %.3f,\n",
               parallel.wall_ms() / 1000.0);
  std::fprintf(f, "    \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "    \"bit_identical\": %s\n",
               mismatches == 0 ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return mismatches == 0 ? 0 : 1;
}
