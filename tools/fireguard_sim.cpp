// fireguard-sim: command-line experiment driver.
//
// One binary that runs any single FireGuard configuration and prints a
// machine-readable summary — the knob set covers everything the paper's
// evaluation sweeps (kernel, engine count, HA, filter width, mapper width,
// scheduling policy, programming model, workload, attack injection), so a
// reader can reproduce any point of any figure without writing code:
//
//   $ fireguard-sim --kernel=asan --engines=4 --workload=x264
//   $ fireguard-sim --kernel=shadow --engines=6 --policy=block --attacks=50
//   $ fireguard-sim --kernel=pmc --ha --workload=ferret
//   $ fireguard-sim --kernel=asan --filter-width=1 --trace-len=200000
//   $ fireguard-sim --software=asan_x86 --workload=dedup
//
// Output is "key value" lines on stdout; exit status is nonzero on a
// configuration error or (with --attacks) when any attack goes undetected.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/soc/experiment.h"

namespace {

using namespace fg;

struct Options {
  std::string workload = "blackscholes";
  std::string kernel = "asan";
  std::optional<std::string> software;
  u32 engines = 4;
  bool ha = false;
  u32 filter_width = 4;
  u32 mapper_width = 1;
  std::optional<std::string> policy;
  std::string model = "hybrid";
  u32 attacks = 0;
  u64 trace_len = 0;  // 0 = default
  u64 seed = 42;
  bool stlf = false;
  bool detailed_mem = false;
  bool help = false;
};

void usage() {
  std::puts(
      "fireguard-sim — run one FireGuard configuration\n"
      "  --workload=NAME     parsec-like profile (blackscholes..x264)\n"
      "  --kernel=K          pmc | shadow | asan | uaf\n"
      "  --software=S        run the software baseline instead:\n"
      "                      shadow_llvm | asan_aarch64 | asan_x86 | dangsan\n"
      "  --engines=N         µcores for the kernel (default 4)\n"
      "  --ha                use one hardware accelerator (pmc/shadow only)\n"
      "  --filter-width=N    mini-filters (1/2/4, default 4)\n"
      "  --mapper-width=N    mapper issue width (default 1, footnote 5)\n"
      "  --policy=P          fixed | round_robin | block (default per kernel)\n"
      "  --model=M           conventional | duff | unrolled | hybrid\n"
      "  --attacks=N         inject N attacks matched to the kernel\n"
      "  --trace-len=N       dynamic instructions (default FG_TRACE_LEN/150k)\n"
      "  --seed=N            workload seed (default 42)\n"
      "  --stlf              enable store-to-load forwarding in the core\n"
      "  --detailed-mem      bank/row DRAM + Sv39 page walks\n");
}

std::optional<Options> parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto eat = [&](const char* prefix, std::string* out) {
      const size_t n = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(n);
        return true;
      }
      return false;
    };
    std::string v;
    if (arg == "--help" || arg == "-h") o.help = true;
    else if (eat("--workload=", &v)) o.workload = v;
    else if (eat("--kernel=", &v)) o.kernel = v;
    else if (eat("--software=", &v)) o.software = v;
    else if (eat("--engines=", &v)) o.engines = static_cast<u32>(std::stoul(v));
    else if (arg == "--ha") o.ha = true;
    else if (eat("--filter-width=", &v)) o.filter_width = static_cast<u32>(std::stoul(v));
    else if (eat("--mapper-width=", &v)) o.mapper_width = static_cast<u32>(std::stoul(v));
    else if (eat("--policy=", &v)) o.policy = v;
    else if (eat("--model=", &v)) o.model = v;
    else if (eat("--attacks=", &v)) o.attacks = static_cast<u32>(std::stoul(v));
    else if (eat("--trace-len=", &v)) o.trace_len = std::stoull(v);
    else if (eat("--seed=", &v)) o.seed = std::stoull(v);
    else if (arg == "--stlf") o.stlf = true;
    else if (arg == "--detailed-mem") o.detailed_mem = true;
    else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg.c_str());
      return std::nullopt;
    }
  }
  return o;
}

std::optional<kernels::KernelKind> kernel_by_name(const std::string& k) {
  if (k == "pmc") return kernels::KernelKind::kPmc;
  if (k == "shadow") return kernels::KernelKind::kShadowStack;
  if (k == "asan") return kernels::KernelKind::kAsan;
  if (k == "uaf") return kernels::KernelKind::kUaf;
  return std::nullopt;
}

std::optional<baseline::SwScheme> software_by_name(const std::string& s) {
  if (s == "shadow_llvm") return baseline::SwScheme::kShadowStackLlvm;
  if (s == "asan_aarch64") return baseline::SwScheme::kAsanAarch64;
  if (s == "asan_x86") return baseline::SwScheme::kAsanX8664;
  if (s == "dangsan") return baseline::SwScheme::kDangSan;
  return std::nullopt;
}

std::optional<core::SchedPolicy> policy_by_name(const std::string& p) {
  if (p == "fixed") return core::SchedPolicy::kFixed;
  if (p == "round_robin") return core::SchedPolicy::kRoundRobin;
  if (p == "block") return core::SchedPolicy::kBlock;
  return std::nullopt;
}

std::optional<kernels::ProgModel> model_by_name(const std::string& m) {
  if (m == "conventional") return kernels::ProgModel::kConventional;
  if (m == "duff") return kernels::ProgModel::kDuff;
  if (m == "unrolled") return kernels::ProgModel::kUnrolled;
  if (m == "hybrid") return kernels::ProgModel::kHybrid;
  return std::nullopt;
}

trace::AttackKind attack_for(kernels::KernelKind k) {
  switch (k) {
    case kernels::KernelKind::kPmc: return trace::AttackKind::kPcHijack;
    case kernels::KernelKind::kShadowStack: return trace::AttackKind::kRetCorrupt;
    case kernels::KernelKind::kAsan: return trace::AttackKind::kHeapOob;
    case kernels::KernelKind::kUaf: return trace::AttackKind::kUseAfterFree;
  }
  return trace::AttackKind::kHeapOob;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> opt = parse(argc, argv);
  if (!opt) return 2;
  if (opt->help) {
    usage();
    return 0;
  }

  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name(opt->workload);
  wl.seed = opt->seed;
  wl.n_insts = opt->trace_len ? opt->trace_len : soc::default_trace_len();
  wl.warmup_insts = wl.n_insts / 10;

  soc::SocConfig sc = soc::table2_soc();
  sc.frontend.filter.width = opt->filter_width;
  sc.frontend.mapper_width = opt->mapper_width;
  sc.core.store_load_forwarding = opt->stlf;
  sc.mem.detailed_dram = opt->detailed_mem;
  sc.mem.detailed_ptw = opt->detailed_mem;

  const Cycle base = soc::run_baseline_cycles(wl, sc);
  std::printf("workload %s\n", opt->workload.c_str());
  std::printf("trace_len %llu\n", static_cast<unsigned long long>(wl.n_insts));
  std::printf("baseline_cycles %llu\n", static_cast<unsigned long long>(base));

  soc::RunResult r;
  if (opt->software) {
    const auto scheme = software_by_name(*opt->software);
    if (!scheme) {
      std::fprintf(stderr, "unknown software scheme '%s'\n", opt->software->c_str());
      return 2;
    }
    r = soc::run_software(wl, *scheme, sc);
    std::printf("mode software/%s\n", opt->software->c_str());
    std::printf("expansion %.3f\n", r.expansion);
  } else {
    const auto kind = kernel_by_name(opt->kernel);
    if (!kind) {
      std::fprintf(stderr, "unknown kernel '%s'\n", opt->kernel.c_str());
      return 2;
    }
    const auto model = model_by_name(opt->model);
    if (!model) {
      std::fprintf(stderr, "unknown programming model '%s'\n", opt->model.c_str());
      return 2;
    }
    soc::KernelDeployment dep = soc::deploy(*kind, opt->engines, *model, opt->ha);
    if (opt->policy) {
      const auto pol = policy_by_name(*opt->policy);
      if (!pol) {
        std::fprintf(stderr, "unknown policy '%s'\n", opt->policy->c_str());
        return 2;
      }
      dep.policy = *pol;
      dep.policy_overridden = true;
    }
    sc.kernels = {dep};
    if (opt->attacks > 0) wl.attacks = {{attack_for(*kind), opt->attacks}};
    r = soc::run_fireguard(wl, sc);
    std::printf("mode fireguard/%s engines=%u%s\n", opt->kernel.c_str(),
                opt->engines, opt->ha ? " (HA)" : "");
  }

  std::printf("cycles %llu\n", static_cast<unsigned long long>(r.cycles));
  std::printf("slowdown %.4f\n",
              static_cast<double>(r.cycles) / static_cast<double>(base));
  std::printf("ipc %.3f\n", r.ipc);
  std::printf("packets %llu\n", static_cast<unsigned long long>(r.packets));
  static const char* kCause[] = {"none", "filter", "mapper", "cdc", "engines"};
  for (size_t i = 1; i < 5; ++i) {
    std::printf("stall_%s %.4f\n", kCause[i], r.stall_fractions[i]);
  }
  if (opt->attacks > 0) {
    std::printf("attacks_planned %llu\n",
                static_cast<unsigned long long>(r.planned_attacks));
    std::printf("attacks_detected %zu\n", r.detections.size());
    double worst_ns = 0;
    for (const auto& d : r.detections) worst_ns = std::max(worst_ns, d.latency_ns);
    std::printf("worst_latency_ns %.1f\n", worst_ns);
    if (r.detections.size() < r.planned_attacks) {
      std::fprintf(stderr, "MISSED %llu attacks\n",
                   static_cast<unsigned long long>(r.planned_attacks -
                                                   r.detections.size()));
      return 1;
    }
  }
  return 0;
}
