// fireguard-sim: deprecated alias for `fgsim run`.
//
// The full legacy flag set (--kernel/--engines/--workload/--software/...)
// is still accepted — `fgsim run` maps every flag onto the declarative
// ExperimentSpec and prints the same machine-readable "key value" summary
// with the same exit codes (2 on configuration error, 1 on a missed
// attack). The implementation lives in tools/cli/run_cmd.cc.
#include <cstdio>

#include "tools/cli/cli.h"

int main(int argc, char** argv) {
  std::fprintf(stderr,
               "note: fireguard-sim is deprecated; use `fgsim run` "
               "(same flags, plus --spec/--set)\n");
  return fg::cli::run_main(argc - 1, argv + 1);
}
