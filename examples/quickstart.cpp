// Quickstart: monitor a workload with AddressSanitizer on four analysis
// engines and compare against the unmonitored baseline — through the
// declarative experiment API.
//
//   $ ./quickstart [workload] [n_ucores]
//
// One ExperimentSpec describes the whole experiment (workload, attacks, SoC,
// kernel deployment); the SimSession facade runs it and hands back the
// derived metrics plus the bit-exact StatSnapshot. The same spec, exported
// with api::spec_to_json, is directly runnable from the command line:
//
//   $ fgsim run --spec examples/table2.json
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/api/session.h"

int main(int argc, char** argv) {
  using namespace fg;

  const std::string workload = argc > 1 ? argv[1] : "blackscholes";
  const u32 n_ucores = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 4;

  // 1) Declare the experiment: Table II SoC, a PARSEC-like synthetic
  //    profile, a handful of out-of-bounds attacks, ASan on n µcores.
  api::ExperimentSpec spec = api::table2_spec(workload);
  spec.name = "quickstart/" + workload;
  spec.workload.attacks = {{trace::AttackKind::kHeapOob, 20}};
  spec.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, n_ucores)};

  // 2) Run it. The session also runs the unmonitored baseline on the
  //    identical trace (memoized) and derives the slowdown.
  api::SimSession session(spec);
  const api::RunOutcome& r = session.run();

  std::printf("workload           : %s (%llu instructions)\n", workload.c_str(),
              static_cast<unsigned long long>(spec.workload.n_insts));
  std::printf("baseline cycles    : %llu (IPC %.2f)\n",
              static_cast<unsigned long long>(r.baseline_cycles),
              static_cast<double>(r.result.committed) /
                  static_cast<double>(r.baseline_cycles));
  std::printf("fireguard cycles   : %llu (IPC %.2f)\n",
              static_cast<unsigned long long>(r.result.cycles), r.result.ipc);
  std::printf("slowdown           : %.3fx with %u ucores\n", r.slowdown,
              n_ucores);
  std::printf("packets analyzed   : %llu\n",
              static_cast<unsigned long long>(r.result.packets));
  std::printf("attacks detected   : %zu / %llu\n", r.result.detections.size(),
              static_cast<unsigned long long>(r.result.planned_attacks));
  if (!r.result.detections.empty()) {
    double worst = 0, sum = 0;
    for (const auto& d : r.result.detections) {
      worst = d.latency_ns > worst ? d.latency_ns : worst;
      sum += d.latency_ns;
    }
    std::printf("detection latency  : mean %.0f ns, worst %.0f ns\n",
                sum / static_cast<double>(r.result.detections.size()), worst);
  }

  // 3) The experiment is a value: export it and re-run it anywhere.
  std::printf("\nreproduce with     : fgsim run --spec <file> "
              "(api::spec_to_json exports this exact spec)\n");
  return 0;
}
