// Quickstart: monitor a workload with AddressSanitizer on four analysis
// engines and compare against the unmonitored baseline.
//
//   $ ./quickstart [workload] [n_ucores]
//
// This walks the whole FireGuard pipeline: the synthetic workload commits
// through the BOOM model, the event filter picks out loads/stores/allocator
// events, the mapper routes them across the clock-domain crossing, and the
// µcores run the generated AddressSanitizer guardian kernel.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/soc/experiment.h"

int main(int argc, char** argv) {
  using namespace fg;

  const std::string workload = argc > 1 ? argv[1] : "blackscholes";
  const u32 n_ucores = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 4;

  // 1) Describe the workload (a PARSEC-like synthetic profile) and inject a
  //    handful of out-of-bounds attacks for the kernel to catch.
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name(workload);
  wl.seed = 42;
  wl.n_insts = soc::default_trace_len();
  wl.attacks = {{trace::AttackKind::kHeapOob, 20}};

  // 2) Configure the SoC per Table II and deploy AddressSanitizer.
  soc::SocConfig sc = soc::table2_soc();
  sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, n_ucores)};

  // 3) Run baseline and monitored systems on the identical trace.
  const Cycle base = soc::run_baseline_cycles(wl, sc);
  const soc::RunResult r = soc::run_fireguard(wl, sc);

  std::printf("workload           : %s (%llu instructions)\n", workload.c_str(),
              static_cast<unsigned long long>(wl.n_insts));
  std::printf("baseline cycles    : %llu (IPC %.2f)\n",
              static_cast<unsigned long long>(base),
              static_cast<double>(r.committed) / static_cast<double>(base));
  std::printf("fireguard cycles   : %llu (IPC %.2f)\n",
              static_cast<unsigned long long>(r.cycles), r.ipc);
  std::printf("slowdown           : %.3fx with %u ucores\n",
              static_cast<double>(r.cycles) / static_cast<double>(base), n_ucores);
  std::printf("packets analyzed   : %llu\n", static_cast<unsigned long long>(r.packets));
  std::printf("attacks detected   : %zu / %llu\n", r.detections.size(),
              static_cast<unsigned long long>(r.planned_attacks));
  if (!r.detections.empty()) {
    double worst = 0, sum = 0;
    for (const auto& d : r.detections) {
      worst = d.latency_ns > worst ? d.latency_ns : worst;
      sum += d.latency_ns;
    }
    std::printf("detection latency  : mean %.0f ns, worst %.0f ns\n",
                sum / static_cast<double>(r.detections.size()), worst);
  }
  return 0;
}
