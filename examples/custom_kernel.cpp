// Writing your own guardian kernel.
//
// FireGuard's programmability is the point of the architecture: a new
// safeguard is (1) a filter programming — which instructions to observe and
// which data paths to read — and (2) a µcore program built with the
// dispatch-loop generator. This example builds a "store canary" kernel from
// scratch: it watches every committed store and flags writes into a
// configured forbidden range (say, a protected configuration page).
#include <cstdio>

#include "src/kernels/progmodel.h"
#include "src/soc/soc.h"
#include "src/trace/workload.h"

using namespace fg;

namespace {

constexpr u64 kForbiddenLo = 0x10000000;  // the workload's global region
constexpr u64 kForbiddenHi = 0x10000100;  // first 32 hot words

/// Step 1: the µcore program. Registers x16/x17 hold the range; the body
/// compares the forwarded store address against it.
ucore::UProgram build_store_canary(kernels::ProgModel model) {
  ucore::UProgramBuilder b("store_canary");
  b.li(16, static_cast<i64>(kForbiddenLo));
  b.li(17, static_cast<i64>(kForbiddenHi));
  const kernels::BodyEmitter body = [](ucore::UProgramBuilder& a, u8 addr) {
    const auto ok = a.new_label();
    const auto viol = a.new_label();
    a.bltu(addr, 16, ok);
    a.bgeu(addr, 17, ok);
    a.j(viol);
    a.bind(viol);
    a.qrecent(13, 0);  // pc of the offending store
    a.detect(13, addr);
    a.bind(ok);
  };
  kernels::emit_dispatch_loop(b, model, /*first_word_off=*/128, body);
  return b.build();
}

}  // namespace

int main() {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name("swaptions");
  wl.seed = 3;
  wl.n_insts = 50000;

  trace::WorkloadGen gen(wl);

  // Step 2: assemble the SoC by hand (no KernelDeployment: this is the
  // lower-level API a custom kernel plugs into).
  soc::SocConfig sc;
  sc.kernels = {};  // we wire everything manually below
  soc::Soc soc(sc, gen);
  (void)soc;  // built only to show the config path exists

  // For a custom kernel the simplest route is a bare frontend + µcore pair:
  core::FrontendConfig fc;
  core::Frontend frontend(fc);
  // Program the filter: all store funct3 variants, LSQ (address) + PRF.
  for (u8 f3 = 0; f3 <= 3; ++f3) {
    frontend.filter().table().add_interest(isa::kOpStore, f3, /*gid=*/0,
                                           core::kDpLsq | core::kDpPrf);
  }
  frontend.allocator().configure_se(0, /*engines=*/0b1, core::SchedPolicy::kFixed,
                                    /*gid=*/0);

  ucore::USharedMemory mem;
  ucore::UCore engine(ucore::UCoreConfig{}, 0, &mem, nullptr);
  engine.load_program(build_store_canary(kernels::ProgModel::kHybrid));

  // Step 3: drive it. A minimal two-domain loop (the soc::Soc class does
  // exactly this, plus back-pressure into the core model).
  class Status final : public core::QueueStatus {
   public:
    explicit Status(ucore::UCore& e) : e_(e) {}
    bool engine_queue_full(u32) const override { return e_.input_full(); }
    size_t engine_queue_free(u32) const override { return e_.input_free(); }

   private:
    ucore::UCore& e_;
  } status(engine);

  trace::TraceInst ti;
  Cycle fast = 0;
  u64 offending_stores = 0;
  while (gen.next(ti)) {
    // Force one "attack": redirect a store into the forbidden page.
    if (gen.emitted() == 30000 && ti.cls != isa::InstClass::kStore) continue;
    if (gen.emitted() == 30000) {
      ti.mem_addr = kForbiddenLo + 0x40;
    }
    if (ti.cls == isa::InstClass::kStore &&
        ti.mem_addr >= kForbiddenLo && ti.mem_addr < kForbiddenHi) {
      ++offending_stores;
    }
    while (!frontend.can_commit(0, ti)) {
      frontend.tick_fast(fast, status, engine.input_full());
      if ((fast & 1) != 0) {
        core::CdcFifo& cdc = frontend.cdc();
        while (cdc.can_pop(fast / 2) && !engine.input_full()) {
          engine.push_input(cdc.pop());
        }
        engine.tick(fast / 2);
      }
      ++fast;
    }
    frontend.on_commit(0, ti, fast);
    frontend.tick_fast(fast, status, engine.input_full());
    if ((fast & 1) != 0) {
      core::CdcFifo& cdc = frontend.cdc();
      while (cdc.can_pop(fast / 2) && !engine.input_full()) {
        engine.push_input(cdc.pop());
      }
      engine.tick(fast / 2);
    }
    ++fast;
  }
  for (int i = 0; i < 4096; ++i) {  // drain
    core::CdcFifo& cdc = frontend.cdc();
    while (cdc.can_pop(fast / 2 + i) && !engine.input_full()) {
      engine.push_input(cdc.pop());
    }
    engine.tick(fast / 2 + i);
  }

  std::printf("store-canary kernel: %zu detections (%llu offending stores "
              "in the trace)\n",
              engine.detections().size(),
              static_cast<unsigned long long>(offending_stores));
  for (const auto& d : engine.detections()) {
    std::printf("  store to 0x%llx from pc 0x%llx\n",
                static_cast<unsigned long long>(d.aux),
                static_cast<unsigned long long>(d.payload));
  }
  return engine.detections().empty() ? 1 : 0;
}
