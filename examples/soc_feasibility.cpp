// Feasibility study for FireGuard on a core of your own.
//
// Section IV-G's methodology as a reusable API: describe any out-of-order
// core (frequency, technology node, die area, measured IPC), and the model
// scales the Table III analysis onto it — how many µcores keep up with its
// throughput, what the FireGuard elements cost in area, and what the
// two-clock-domain design does to the energy overhead.
//
//   $ ./soc_feasibility                      # the built-in example core
//   $ ./soc_feasibility NAME FREQ_GHZ TECH_NM AREA_MM2 IPC [COMMIT_WIDTH]
//   $ ./soc_feasibility Neoverse-V2 3.4 5 2.5 3.1 8
#include <cstdio>
#include <cstdlib>

#include "src/area/area_model.h"
#include "src/area/energy_model.h"

int main(int argc, char** argv) {
  using namespace fg;

  area::CoreSpec core;
  if (argc >= 6) {
    core.name = argv[1];
    core.freq_ghz = std::atof(argv[2]);
    core.tech_nm = static_cast<u32>(std::atoi(argv[3]));
    core.area_native_mm2 = std::atof(argv[4]);
    core.ipc = std::atof(argv[5]);
    core.commit_width = argc >= 7 ? static_cast<u32>(std::atoi(argv[6])) : 4;
  } else {
    // A plausible mid-range automotive-class core (the paper's motivating
    // deployment): 3 GHz, 7nm, 2 mm², IPC 2.2, 6-wide commit.
    core.name = "AutoCore-3G";
    core.freq_ghz = 3.0;
    core.tech_nm = 7;
    core.area_native_mm2 = 2.0;
    core.ipc = 2.2;
    core.commit_width = 6;
  }

  const area::FireGuardCost cost = area::per_core_cost(core);
  std::printf("=== FireGuard feasibility: %s ===\n", core.name.c_str());
  std::printf("core                : %.1f GHz, %unm, %.2f mm^2 native "
              "(%.2f mm^2 @14nm), IPC %.2f\n",
              core.freq_ghz, core.tech_nm, core.area_native_mm2,
              cost.core_area_14nm, core.ipc);
  std::printf("normalized thruput  : %.2fx BOOM\n", cost.norm_throughput);
  std::printf("filter width needed : %u-way (commit width)\n",
              cost.filter_width);
  std::printf("ucores needed       : %u (linear in throughput, Sec IV-G)\n",
              cost.n_ucores);
  std::printf("transport area      : %.3f mm^2 (filter + mapper)\n",
              cost.transport_mm2);
  std::printf("FireGuard area      : %.3f mm^2 = %.1f%% of the core\n",
              cost.overhead_mm2, cost.pct_of_core);

  const area::EnergyBreakdown e = area::estimate_energy(
      core, cost, area::ActivityFactors{}, core.freq_ghz / 2.0);
  std::printf("\npower (relative units, fabric at half clock):\n");
  for (const area::BlockPower& b : e.blocks) {
    if (b.area_mm2 <= 0.0) continue;
    std::printf("  %-12s %8.2f mW  (%.2f mm^2 @ %.1f GHz, alpha %.2f)\n",
                b.name.c_str(), b.total_mw(), b.area_mm2, b.freq_ghz, b.alpha);
  }
  std::printf("energy overhead     : %.1f%% of core power (area: %.1f%%; "
              "single-domain would be %.1f%%)\n",
              e.overhead_pct, e.area_overhead_pct,
              e.single_domain_overhead_pct);

  const bool ok = cost.pct_of_core < 100.0 && e.overhead_pct < e.area_overhead_pct;
  std::printf("\n%s\n", ok ? "feasible: energy overhead below area overhead, "
                             "as the two-domain design intends"
                           : "check inputs: the model produced an implausible "
                             "configuration");
  return ok ? 0 : 1;
}
