// Attack-detection demo: deploy all four guardian kernels at once, inject
// one attack of each class, and watch each kernel catch its own.
//
//   $ ./attack_detection [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/soc/experiment.h"

int main(int argc, char** argv) {
  using namespace fg;

  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name("ferret");
  wl.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  wl.n_insts = 80000;
  wl.warmup_insts = 8000;
  wl.attacks = {{trace::AttackKind::kPcHijack, 5},
                {trace::AttackKind::kRetCorrupt, 5},
                {trace::AttackKind::kHeapOob, 5},
                {trace::AttackKind::kUseAfterFree, 5}};

  // Four kernels side by side: PMC + shadow stack + ASan + UaF. Sixteen
  // engines is the AE-bitmap limit, so the light kernels get 2 each.
  soc::SocConfig sc = soc::table2_soc();
  sc.kernels = {soc::deploy(kernels::KernelKind::kPmc, 2),
                soc::deploy(kernels::KernelKind::kShadowStack, 2),
                soc::deploy(kernels::KernelKind::kAsan, 6),
                soc::deploy(kernels::KernelKind::kUaf, 6)};

  trace::WorkloadGen gen(wl);
  sc.kparams.text_lo = gen.text_lo();
  sc.kparams.text_hi = gen.text_hi();
  soc::Soc soc(sc, gen);
  soc.run();

  std::map<u32, trace::AttackKind> kind_of;
  for (const auto& inj : gen.injected()) kind_of[inj.id] = inj.kind;

  std::printf("injected %zu attacks; kernels reported:\n", gen.injected().size());
  for (const auto& d : soc.detections()) {
    std::printf("  attack #%-3u %-15s caught by engine %2u after %7.0f ns\n",
                d.attack_id,
                kind_of.count(d.attack_id)
                    ? trace::attack_kind_name(kind_of[d.attack_id])
                    : "?",
                d.engine, d.latency_ns);
  }
  std::printf("core finished in %llu cycles (%llu instructions)\n",
              static_cast<unsigned long long>(soc.core_cycles()),
              static_cast<unsigned long long>(soc.committed()));
  return 0;
}
