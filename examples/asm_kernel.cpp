// Authoring a guardian kernel as reviewable assembly text.
//
// The other examples build kernels with the C++ UProgramBuilder; a deployed
// FireGuard instead ships kernels as text artifacts that a driver assembles
// and loads at run time (so the security team can audit exactly what runs on
// the analysis engines). This example assembles a jump-target bounds check —
// the heart of the paper's PMC kernel — from source text, deploys it on one
// µcore, streams it a mix of benign and hijacked control-flow packets, and
// prints the verdicts.
//
//   $ ./asm_kernel
#include <cstdio>

#include "src/core/packet.h"
#include "src/ucore/uasm.h"
#include "src/ucore/ucore.h"
#include "src/ucore/umem.h"

namespace {

// Flag any control-flow target outside [text_lo, text_hi) carried in the
// packet's Addr word. r4/r5 are preloaded bounds registers; `qrecent`
// fetches the PC word only for the error report, exactly the deferred-read
// pattern the `recent` instruction was added for (Table I).
constexpr const char* kPmcBoundsAsm = R"(
  ; r4 = text_lo, r5 = text_hi
  loop:
    qcount  r1, 0
    beqz    r1, loop
    qpop    r2, 128        ; Addr word: the jump target
    bltu    r2, r4, bad    ; below text?
    bgeu    r2, r5, bad    ; above text?
    j       loop
  bad:
    qrecent r3, 0          ; PC word of the offending instruction
    detect  r2, r3         ; payload = rogue target, aux = site PC
    j       loop
)";

fg::core::Packet jump_packet(fg::u64 pc, fg::u64 target) {
  fg::core::Packet p;
  p.valid = true;
  p.pc = pc;
  p.addr = target;
  return p;
}

}  // namespace

int main() {
  using namespace fg;

  const ucore::AsmResult prog = ucore::assemble(kPmcBoundsAsm, "pmc_bounds");
  if (!prog.ok) {
    std::fprintf(stderr, "assembly failed: %s\n", prog.error.c_str());
    return 1;
  }
  std::printf("assembled %zu instructions, %zu jump tables\n\n",
              prog.program.code.size(), prog.program.jump_tables.size());
  std::printf("%s\n", ucore::disassemble(prog.program).c_str());

  ucore::USharedMemory mem;
  ucore::UCore engine(ucore::UCoreConfig{}, /*engine_id=*/0, &mem,
                      /*shared_l2=*/nullptr);
  engine.load_program(prog.program);
  constexpr u64 kTextLo = 0x10000, kTextHi = 0x90000;
  engine.set_reg(4, kTextLo);
  engine.set_reg(5, kTextHi);

  // A benign call, a benign return, then a hijacked jump into the heap.
  engine.push_input(jump_packet(0x10100, 0x2'0000));
  engine.push_input(jump_packet(0x20040, 0x10104));
  engine.push_input(jump_packet(0x30008, 0xdead0000));

  for (Cycle c = 0; c < 400; ++c) engine.tick(c);

  std::printf("packets processed : %llu\n",
              static_cast<unsigned long long>(engine.stats().packets_popped));
  for (const ucore::Detection& d : engine.detections()) {
    std::printf("VIOLATION: jump to 0x%llx from pc 0x%llx\n",
                static_cast<unsigned long long>(d.payload),
                static_cast<unsigned long long>(d.aux));
  }
  if (engine.detections().size() == 1 &&
      engine.detections()[0].payload == 0xdead0000ull) {
    std::printf("OK: exactly the hijacked jump was flagged\n");
    return 0;
  }
  std::fprintf(stderr, "unexpected verdicts (%zu detections)\n",
               engine.detections().size());
  return 1;
}
