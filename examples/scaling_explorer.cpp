// Scalability explorer: sweep µcore counts for a kernel/workload pair and
// print the slowdown curve plus where the bottleneck sits (the Figure 9/10
// analysis as an interactive tool) — built on the declarative sweep API.
//
//   $ ./scaling_explorer [kernel] [workload] [max_ucores]
//   kernels: pmc | ss | asan | uaf
//
// The whole sweep is ONE ExperimentSpec with an "engines" axis; the
// SimSession expands the grid, shares one memoized baseline across every
// point, and reports progress per completed point. The identical sweep runs
// from the shell:
//
//   $ fgsim sweep --spec <exported spec with the engines axis>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/api/session.h"

int main(int argc, char** argv) {
  using namespace fg;

  const std::string kernel = argc > 1 ? argv[1] : "asan";
  const std::string workload = argc > 2 ? argv[2] : "x264";
  const u32 max_ucores = argc > 3 ? static_cast<u32>(std::atoi(argv[3])) : 12;

  // "ss" is accepted as a short spelling by the spec layer's kernel map.
  api::ExperimentSpec spec = api::table2_spec(workload);
  spec.name = kernel + "/" + workload;
  std::string err;
  if (!api::apply_set(&spec, "kernel", kernel, &err)) {
    std::fprintf(stderr, "%s (pmc|ss|asan|uaf)\n", err.c_str());
    return 1;
  }
  api::SweepAxis axis;
  axis.key = "engines";
  for (u32 n = 2; n <= max_ucores; n += 2) {
    axis.values.push_back(std::to_string(n));
  }
  spec.sweep = {axis};

  api::SimSession session(spec);
  // Live progress on stderr (points may complete out of order across
  // workers); the ordered table prints from the stable results below.
  session.on_progress([](const api::Progress& p) {
    std::fprintf(stderr, "\r  simulated %zu/%zu points", p.completed, p.total);
    if (p.completed == p.total) std::fprintf(stderr, "\n");
  });
  const std::vector<api::RunOutcome>& results = session.run_all();

  const Cycle base = results.front().baseline_cycles;
  std::printf("%s on %s — baseline %llu cycles (IPC %.2f)\n\n", kernel.c_str(),
              workload.c_str(), static_cast<unsigned long long>(base),
              static_cast<double>(spec.workload.n_insts) /
                  static_cast<double>(base));
  std::printf("%8s %10s %10s %28s\n", "ucores", "slowdown", "packets",
              "commit stalls (f/m/c/e %)");
  for (const api::RunOutcome& r : results) {
    const size_t eq = r.name.rfind('=');
    const std::string ucores =
        eq == std::string::npos ? r.name : r.name.substr(eq + 1);
    std::printf(
        "%8s %9.3fx %10llu %9.1f %5.1f %5.1f %5.1f\n", ucores.c_str(),
        r.slowdown, static_cast<unsigned long long>(r.result.packets),
        100 * r.result.stall_fractions[static_cast<size_t>(core::StallCause::kFilter)],
        100 * r.result.stall_fractions[static_cast<size_t>(core::StallCause::kMapper)],
        100 * r.result.stall_fractions[static_cast<size_t>(core::StallCause::kCdc)],
        100 * r.result.stall_fractions[static_cast<size_t>(core::StallCause::kEngines)]);
  }
  return 0;
}
