// Scalability explorer: sweep µcore counts for a kernel/workload pair and
// print the slowdown curve plus where the bottleneck sits (the Figure 9/10
// analysis as an interactive tool).
//
//   $ ./scaling_explorer [kernel] [workload] [max_ucores]
//   kernels: pmc | ss | asan | uaf
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/soc/experiment.h"

int main(int argc, char** argv) {
  using namespace fg;

  const std::string kernel = argc > 1 ? argv[1] : "asan";
  const std::string workload = argc > 2 ? argv[2] : "x264";
  const u32 max_ucores = argc > 3 ? static_cast<u32>(std::atoi(argv[3])) : 12;

  kernels::KernelKind kind;
  if (kernel == "pmc") {
    kind = kernels::KernelKind::kPmc;
  } else if (kernel == "ss") {
    kind = kernels::KernelKind::kShadowStack;
  } else if (kernel == "asan") {
    kind = kernels::KernelKind::kAsan;
  } else if (kernel == "uaf") {
    kind = kernels::KernelKind::kUaf;
  } else {
    std::fprintf(stderr, "unknown kernel '%s' (pmc|ss|asan|uaf)\n", kernel.c_str());
    return 1;
  }

  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name(workload);
  wl.seed = 42;
  wl.n_insts = soc::default_trace_len();

  soc::SocConfig sc = soc::table2_soc();
  const Cycle base = soc::run_baseline_cycles(wl, sc);
  std::printf("%s on %s — baseline %llu cycles (IPC %.2f)\n\n", kernel.c_str(),
              workload.c_str(), static_cast<unsigned long long>(base),
              static_cast<double>(wl.n_insts) / static_cast<double>(base));
  std::printf("%8s %10s %10s %28s\n", "ucores", "slowdown", "packets",
              "commit stalls (f/m/c/e %)");

  for (u32 n = 2; n <= max_ucores; n += 2) {
    soc::SocConfig s2 = sc;
    s2.kernels = {soc::deploy(kind, n)};
    const soc::RunResult r = soc::run_fireguard(wl, s2);
    const double slow = static_cast<double>(r.cycles) / static_cast<double>(base);
    std::printf("%8u %9.3fx %10llu %9.1f %5.1f %5.1f %5.1f\n", n, slow,
                static_cast<unsigned long long>(r.packets),
                100 * r.stall_fractions[static_cast<size_t>(core::StallCause::kFilter)],
                100 * r.stall_fractions[static_cast<size_t>(core::StallCause::kMapper)],
                100 * r.stall_fractions[static_cast<size_t>(core::StallCause::kCdc)],
                100 * r.stall_fractions[static_cast<size_t>(core::StallCause::kEngines)]);
  }
  return 0;
}
